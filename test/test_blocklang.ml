open Blocklang
open Helpers

let parse = Parser.parse_exn

let test_parse_shapes () =
  let p = parse "begin decl x : int; x := 1 + 2 * 3; print x end" in
  Alcotest.(check int) "three statements" 3 (List.length p.Ast.stmts);
  Alcotest.(check int) "one block" 1 (Ast.block_count p);
  (* precedence: 1 + (2 * 3) *)
  match (List.nth p.Ast.stmts 1).Ast.sdesc with
  | Ast.Assign ("x", { desc = Ast.Binop (Ast.Add, _, { desc = Ast.Binop (Ast.Mul, _, _); _ }); _ }) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_nesting () =
  let p = parse "begin begin begin decl x : int end end end" in
  Alcotest.(check int) "blocks" 3 (Ast.block_count p);
  Alcotest.(check int) "depth" 3 (Ast.max_depth p)

let test_parse_knows () =
  let p = parse "begin decl x : int; begin knows x decl y : bool end end" in
  match (List.nth p.Ast.stmts 1).Ast.sdesc with
  | Ast.Block { knows = Some [ "x" ]; _ } -> ()
  | _ -> Alcotest.fail "knows list lost"

let test_parse_empty_knows () =
  let p = parse "begin begin knows decl y : bool end end" in
  match (List.hd p.Ast.stmts).Ast.sdesc with
  | Ast.Block { knows = Some []; _ } -> ()
  | _ -> Alcotest.fail "empty knows list lost"

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" src)
    [
      "";
      "begin";
      "begin end end";
      "begin decl x end";
      "begin decl x : float end";
      "begin x = 1 end";
      "begin print (1 end";
      "begin 1 := x end";
    ]

let test_identifiers () =
  let p = parse "begin decl a : int; a := b + c; begin knows d decl e : int end end" in
  Alcotest.(check (list string)) "order, no dups"
    [ "a"; "b"; "c"; "d"; "e" ]
    (Ast.identifiers p)

let test_pp_round_trip () =
  let src = "begin decl x : int; x := (1 + 2) * x; begin knows x print x end end" in
  let p = parse src in
  let printed = Fmt.str "%a" Ast.pp_program p in
  let p' = parse printed in
  Alcotest.(check (list string)) "identifiers preserved" (Ast.identifiers p)
    (Ast.identifiers p');
  Alcotest.(check int) "blocks preserved" (Ast.block_count p) (Ast.block_count p')

(* {2 Checker} *)

let diags_of backend src =
  match Driver.check_source backend src with
  | Driver.Check_errors ds -> List.map (fun d -> d.Checker.kind) ds
  | Driver.Ran _ -> []
  | Driver.Parse_error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Driver.Runtime_error msg -> Alcotest.failf "runtime error: %s" msg

let test_checker_accepts_good () =
  Alcotest.(check int) "no diagnostics" 0
    (List.length (diags_of Driver.Direct "begin decl x : int; x := 1 end"))

let test_checker_duplicate () =
  match diags_of Driver.Direct "begin decl x : int; decl x : int end" with
  | [ Checker.Duplicate_declaration ] -> ()
  | _ -> Alcotest.fail "expected exactly a duplicate diagnostic"

let test_checker_shadowing_is_fine () =
  Alcotest.(check int) "no diagnostics" 0
    (List.length
       (diags_of Driver.Direct
          "begin decl x : int; begin decl x : bool; x := true end end"))

let test_checker_undeclared () =
  match diags_of Driver.Direct "begin x := 1 end" with
  | [ Checker.Undeclared_identifier ] -> ()
  | _ -> Alcotest.fail "expected undeclared diagnostic"

let test_checker_out_of_scope_after_block () =
  match
    diags_of Driver.Direct
      "begin begin decl x : int; x := 1 end; x := 2 end"
  with
  | [ Checker.Undeclared_identifier ] -> ()
  | _ -> Alcotest.fail "identifier escaped its block"

let test_checker_types () =
  (match diags_of Driver.Direct "begin decl x : int; x := true end" with
  | [ Checker.Type_mismatch ] -> ()
  | _ -> Alcotest.fail "assignment mismatch missed");
  (match diags_of Driver.Direct "begin decl b : bool; b := 1 < 2 && true end" with
  | [] -> ()
  | _ -> Alcotest.fail "valid boolean expression rejected");
  match diags_of Driver.Direct "begin decl b : bool; b := 1 && true end" with
  | Checker.Type_mismatch :: _ -> ()
  | _ -> Alcotest.fail "operand mismatch missed"

let test_checker_knows_enforced () =
  let src =
    "begin decl x : int; decl y : int; begin knows x decl z : int; z := y end end"
  in
  (match diags_of Driver.Direct src with
  | [ Checker.Undeclared_identifier ] -> ()
  | _ -> Alcotest.fail "knows leak (direct)");
  match diags_of Driver.Algebraic_knows src with
  | [ Checker.Undeclared_identifier ] -> ()
  | _ -> Alcotest.fail "knows leak (algebraic)"

let test_checker_knows_unsupported_backend () =
  match diags_of Driver.Algebraic "begin begin knows decl x : int end end" with
  | Checker.Knows_unsupported :: _ -> ()
  | _ -> Alcotest.fail "unsupported knows not reported"

let test_toplevel_knows_rejected () =
  match diags_of Driver.Direct "begin knows x decl x : int end" with
  | Checker.Toplevel_knows :: _ -> ()
  | _ -> Alcotest.fail "top-level knows accepted"

(* {2 Backends agree (experiment E8)} *)

let programs =
  [
    "begin decl x : int; x := 1 end";
    "begin decl x : int; decl x : int end";
    "begin x := 1 end";
    "begin decl x : int; x := true end";
    "begin decl x : int; begin decl x : bool; x := true; print x end; print x end";
    "begin decl a : int; decl b : int; a := 2; b := a * a; print a + b end";
    "begin decl p : bool; p := not (1 < 0); print p end";
  ]

let test_backends_agree () =
  List.iter
    (fun src ->
      let reference = Fmt.str "%a" Driver.pp_outcome (Driver.run_source Driver.Direct src) in
      List.iter
        (fun backend ->
          Alcotest.(check string)
            (Fmt.str "%s on %s" (Driver.backend_name backend) src)
            reference
            (Fmt.str "%a" Driver.pp_outcome (Driver.run_source backend src)))
        [ Driver.Algebraic; Driver.Algebraic_knows ])
    programs

(* {2 VM and codegen} *)

let run_direct src =
  match Driver.run_source Driver.Direct src with
  | Driver.Ran values -> values
  | other -> Alcotest.failf "did not run: %a" Driver.pp_outcome other

let test_vm_arithmetic () =
  Alcotest.(check (list (testable Vm.pp_value ( = ))))
    "arithmetic"
    [ Vm.Vint 14; Vm.Vbool true ]
    (run_direct
       "begin decl x : int; x := 2 + 3 * 4; print x; print x == 14 end")

let test_vm_shadowing_slots () =
  Alcotest.(check (list (testable Vm.pp_value ( = ))))
    "independent slots"
    [ Vm.Vint 42; Vm.Vint 7 ]
    (run_direct
       "begin decl x : int; x := 7; begin decl x : int; x := 42; print x end; print x end")

let test_vm_outer_assign_from_inner_block () =
  Alcotest.(check (list (testable Vm.pp_value ( = ))))
    "writes through scopes"
    [ Vm.Vint 5 ]
    (run_direct "begin decl x : int; begin x := 5 end; print x end")

let test_eval_vm_differential () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | Error _ -> ()
      | Ok p -> (
        match Checker.Direct.check p with
        | Error _ -> ()
        | Ok rp ->
          let compiled = Vm.run (Codegen.compile rp) in
          let interpreted = Eval.run rp in
          Alcotest.(check (list (testable Vm.pp_value ( = ))))
            ("agree on " ^ src) interpreted compiled))
    programs

let test_vm_stuck_on_bad_code () =
  (match Vm.run { Vm.code = [| Vm.Prim Ast.Add |]; slots = 0 } with
  | exception Vm.Stuck _ -> ()
  | _ -> Alcotest.fail "underflow accepted");
  (match Vm.run { Vm.code = [| Vm.Jmp 99 |]; slots = 0 } with
  | exception Vm.Stuck _ -> ()
  | _ -> Alcotest.fail "wild jump accepted");
  (* an intentional infinite loop trips the step budget *)
  match Vm.run ~max_steps:1000 { Vm.code = [| Vm.Jmp 0 |]; slots = 0 } with
  | exception Vm.Stuck _ -> ()
  | _ -> Alcotest.fail "non-termination unnoticed"

(* {2 Control flow} *)

let test_if_statement () =
  Alcotest.(check (list (testable Vm.pp_value ( = ))))
    "both branches"
    [ Vm.Vint 1; Vm.Vint 10 ]
    (run_direct
       {|begin
           decl x : int;
           x := 5;
           if x < 10 then begin print 1 end else begin print 2 end;
           if 10 < x then begin x := 10 end;
           print x * 2
         end|})

let test_while_loop () =
  Alcotest.(check (list (testable Vm.pp_value ( = ))))
    "sum 1..5"
    [ Vm.Vint 15 ]
    (run_direct
       {|begin
           decl i : int;
           decl sum : int;
           i := 1;
           while not (5 < i) do begin
             sum := sum + i;
             i := i + 1
           end;
           print sum
         end|})

let test_loop_body_scope_reinitialised () =
  (* a local declared in the loop body is reset on every iteration *)
  Alcotest.(check (list (testable Vm.pp_value ( = ))))
    "fresh local per iteration"
    [ Vm.Vint 7; Vm.Vint 7; Vm.Vint 7 ]
    (run_direct
       {|begin
           decl i : int;
           i := 0;
           while i < 3 do begin
             decl t : int;
             t := t + 7;
             print t;
             i := i + 1
           end
         end|})

let test_condition_must_be_bool () =
  (match diags_of Driver.Direct "begin if 1 then begin end end" with
  | Checker.Type_mismatch :: _ -> ()
  | _ -> Alcotest.fail "int condition accepted");
  match diags_of Driver.Direct "begin while 0 do begin end end" with
  | Checker.Type_mismatch :: _ -> ()
  | _ -> Alcotest.fail "int loop condition accepted"

let test_branch_scoping () =
  (* declarations inside a branch do not escape *)
  match
    diags_of Driver.Direct
      "begin if true then begin decl x : int; x := 1 end; x := 2 end"
  with
  | [ Checker.Undeclared_identifier ] -> ()
  | _ -> Alcotest.fail "branch local escaped"

let test_control_flow_backends_agree () =
  let src =
    {|begin
        decl n : int;
        decl fact : int;
        n := 5;
        fact := 1;
        while 0 < n do begin
          fact := fact * n;
          n := n - 1
        end;
        if fact == 120 then begin print fact end else begin print 0 end
      end|}
  in
  let reference = Fmt.str "%a" Driver.pp_outcome (Driver.run_source Driver.Direct src) in
  Alcotest.(check string) "value" "120" reference;
  List.iter
    (fun backend ->
      Alcotest.(check string)
        (Driver.backend_name backend)
        reference
        (Fmt.str "%a" Driver.pp_outcome (Driver.run_source backend src)))
    [ Driver.Algebraic; Driver.Algebraic_knows ]

let suite =
  [
    case "parser: statement shapes and precedence" test_parse_shapes;
    case "parser: nesting" test_parse_nesting;
    case "parser: knows lists" test_parse_knows;
    case "parser: empty knows lists" test_parse_empty_knows;
    case "parser: rejects malformed programs" test_parse_errors;
    case "identifier collection" test_identifiers;
    case "pretty-printer round trip" test_pp_round_trip;
    case "checker: accepts valid programs" test_checker_accepts_good;
    case "checker: duplicate declarations" test_checker_duplicate;
    case "checker: shadowing is legal" test_checker_shadowing_is_fine;
    case "checker: undeclared identifiers" test_checker_undeclared;
    case "checker: block locals do not escape" test_checker_out_of_scope_after_block;
    case "checker: type discipline" test_checker_types;
    case "checker: knows lists enforced" test_checker_knows_enforced;
    case "checker: knows needs a capable backend"
      test_checker_knows_unsupported_backend;
    case "checker: top-level knows rejected" test_toplevel_knows_rejected;
    case "all backends produce identical verdicts (E8)" test_backends_agree;
    case "vm: arithmetic" test_vm_arithmetic;
    case "vm: shadowed variables get distinct slots" test_vm_shadowing_slots;
    case "vm: inner blocks write outer variables" test_vm_outer_assign_from_inner_block;
    case "vm and tree-walker agree (differential)" test_eval_vm_differential;
    case "vm: traps ill-formed code" test_vm_stuck_on_bad_code;
    case "control flow: if" test_if_statement;
    case "control flow: while" test_while_loop;
    case "control flow: loop-body locals are re-initialised"
      test_loop_body_scope_reinitialised;
    case "control flow: conditions must be bool" test_condition_must_be_bool;
    case "control flow: branch locals do not escape" test_branch_scoping;
    case "control flow: all backends agree" test_control_flow_backends_agree;
  ]
