(* The verification passes (ADT020 sufficient completeness, ADT021
   termination, ADT022 confluence): the pattern-matrix machinery, the
   greedy precedence search, the status lattice, agreement between the
   matrix verdict and exhaustive ground enumeration (qcheck), the
   no-loop guarantee an RPO orientation buys, and the regression that
   ADT002 and ADT022 — both fed from one analysis — never disagree on
   the seeded faults. *)

open Adt
open Analysis
open Helpers

let contains = Astring_contains.contains

let parse src =
  match Parser.parse_specs ~env:(Library.to_env Library.builtin) src with
  | Ok specs -> List.rev specs |> List.hd
  | Error e -> Alcotest.failf "parse: %a" Parser.pp_error e

(* {1 Pattern_matrix} *)

let nat_matrix rows = Pattern_matrix.create nat_spec ~sorts:[ nat ] ~rows

let test_matrix_exhaustive () =
  let m = nat_matrix [ [ z ]; [ s (v "m") ] ] in
  Alcotest.(check bool) "z | s m is exhaustive" true
    (Pattern_matrix.exhaustive m);
  Alcotest.(check bool) "no witness" true (Pattern_matrix.uncovered m = None);
  let wild = nat_matrix [ [ v "n" ] ] in
  Alcotest.(check bool) "a wildcard row is exhaustive" true
    (Pattern_matrix.exhaustive wild)

let test_matrix_uncovered_witness () =
  let m = nat_matrix [ [ z ] ] in
  (match Pattern_matrix.uncovered m with
  | Some [ w ] ->
    (* the missing constructor, wildcards filled with ground constants *)
    check_term "witness is s(z)" (s z) w
  | other ->
    Alcotest.failf "expected one witness, got %s"
      (match other with None -> "none" | Some l -> Fmt.str "%d" (List.length l)))
  ;
  let deep = nat_matrix [ [ z ]; [ s z ] ] in
  match Pattern_matrix.uncovered deep with
  | Some [ w ] -> check_term "nested witness s(s(z))" (s (s z)) w
  | _ -> Alcotest.fail "z | s z leaves s(s(_)) uncovered"

let test_matrix_usefulness () =
  let m = nat_matrix [ [ z ] ] in
  Alcotest.(check bool) "s-pattern useful after z row" true
    (Pattern_matrix.useful m [ s (v "m") ]);
  let full = nat_matrix [ [ z ]; [ s (v "m") ] ] in
  Alcotest.(check bool) "nothing useful after a complete matrix" false
    (Pattern_matrix.useful full [ v "q" ])

let test_matrix_parameter_sort () =
  (* a sort with no constructors has an infinite signature: only a
     wildcard row covers it, and the empty matrix reports a variable
     witness *)
  let p = Sort.v "P" in
  let sg = Signature.add_sort p Signature.empty in
  let spec = Spec.v ~name:"P" ~signature:sg ~constructors:[] ~axioms:[] () in
  let empty = Pattern_matrix.create spec ~sorts:[ p ] ~rows:[] in
  Alcotest.(check bool) "empty matrix is not exhaustive" false
    (Pattern_matrix.exhaustive empty);
  (match Pattern_matrix.uncovered empty with
  | Some [ w ] ->
    Alcotest.(check bool) "witness is a variable" true
      (match Term.view w with Term.Var _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected a variable witness");
  let wild =
    Pattern_matrix.create spec ~sorts:[ p ] ~rows:[ [ Term.var "x" p ] ]
  in
  Alcotest.(check bool) "wildcard row covers a parameter sort" true
    (Pattern_matrix.exhaustive wild)

let test_matrix_width_mismatch () =
  Alcotest.check_raises "ragged rows rejected"
    (Invalid_argument
       "Pattern_matrix.create: row 0 has 2 patterns, expected 1") (fun () ->
      ignore (nat_matrix [ [ z; z ] ]))

(* {1 The seeded faults (same sources as specs/faulty/)} *)

let blend_spec () = parse Test_analysis.blend_incomplete_src
let flow_spec () = parse Test_analysis.unorientable_src
let tally_spec () = parse Test_analysis.nonconfluent_src
let toggle_spec () = parse Test_analysis.divergent_src
let sym_spec () = parse Test_analysis.nonlinear_src
let leaky_spec () = parse Test_analysis.missing_case_src

(* {1 Ordering.search (the ADT021 prover)} *)

let test_search_orients_corpus () =
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (Fmt.str "%s oriented" (Spec.name spec))
        true
        (Ordering.oriented (Ordering.search spec)))
    Adt_specs.Corpus.all

let test_search_rejects_commutativity () =
  let sr = Ordering.search (flow_spec ()) in
  match sr.Ordering.unoriented with
  | [ ax ] -> Alcotest.(check string) "the comm axiom" "comm" (Axiom.name ax)
  | other -> Alcotest.failf "expected 1 unoriented, got %d" (List.length other)

let test_search_bumps_beyond_seed () =
  (* Tally's [wrap3] S(S(S(x))) = Z needs S > Z, which the name-ordered
     dependency seed does not give: only the greedy bump finds it *)
  let sr = Ordering.search (tally_spec ()) in
  Alcotest.(check bool) "tally oriented" true (Ordering.oriented sr);
  let rank op = List.assoc op sr.Ordering.ranks in
  Alcotest.(check bool) "S above Z" true (rank "S" > rank "Z")

(* {1 Completeness (ADT020)} *)

let test_completeness_holes_decided () =
  let r = Verify.completeness (leaky_spec ()) in
  Alcotest.(check bool) "not sufficiently complete" false
    (Verify.sufficiently_complete r);
  Alcotest.(check (list string))
    "one hole per leaky observer" [ "POP"; "PEEK" ]
    (List.map (fun h -> Op.name h.Verify.hole_op) r.Verify.holes);
  List.iter
    (fun h -> Alcotest.(check bool) "decided" true h.Verify.decided)
    r.Verify.holes

let test_completeness_interior_hole () =
  let r = Verify.completeness (blend_spec ()) in
  match r.Verify.holes with
  | [ h ] ->
    Alcotest.(check string)
      "witness is the missing pair" "BLEND(GREEN, GREEN)"
      (Term.to_string h.Verify.witness)
  | other -> Alcotest.failf "expected 1 hole, got %d" (List.length other)

let test_completeness_nonlinear_ground_fallback () =
  (* SAME?(s, s) is excluded from the matrix; the hole is confirmed by
     ground enumeration, which finds the asymmetric pair *)
  let r = Verify.completeness (sym_spec ()) in
  match r.Verify.holes with
  | [ h ] ->
    Alcotest.(check bool) "decided by ground enumeration" true h.Verify.decided;
    Alcotest.(check bool) "witness is an asymmetric application" true
      (let s = Term.to_string h.Verify.witness in
       contains s "SAME?" && not (String.equal s "SAME?(A, A)")
       && not (String.equal s "SAME?(B, B)"))
  | other -> Alcotest.failf "expected 1 hole, got %d" (List.length other)

(* {1 The status lattice (ADT021/ADT022)} *)

let status_name = function
  | Verify.Confluent_newman -> "newman"
  | Verify.Confluent_orthogonal -> "orthogonal"
  | Verify.Locally_confluent_only -> "local-only"
  | Verify.Not_locally_confluent -> "not-local"
  | Verify.Undecided -> "undecided"

let check_status what expected spec =
  Alcotest.(check string) what (status_name expected)
    (status_name (Verify.analyze spec).Verify.status)

let test_statuses () =
  check_status "clean Queue is Newman-confluent" Verify.Confluent_newman
    Adt_specs.Queue_spec.spec;
  check_status "Toggle diverges" Verify.Not_locally_confluent (toggle_spec ());
  check_status "Tally diverges" Verify.Not_locally_confluent (tally_spec ());
  (* commutativity: not terminating by RPO, but orthogonal *)
  check_status "Flow is orthogonal" Verify.Confluent_orthogonal (flow_spec ())

let test_flow_fires_only_adt021 () =
  let diags = Lint.verify (flow_spec ()) in
  Alcotest.(check (list string)) "exactly the termination finding"
    [ "ADT021" ]
    (List.map (fun d -> d.Diagnostic.code) diags)

let test_corpus_verified () =
  List.iter
    (fun spec ->
      let s = Verify.summarize spec in
      Alcotest.(check bool)
        (Fmt.str "%s verified: %a" (Spec.name spec) Verify.pp_summary s)
        true (Verify.verified s);
      let line = Fmt.str "%a" Verify.pp_summary s in
      Alcotest.(check bool) "summary says sufficiently complete" true
        (contains line "sufficiently complete");
      Alcotest.(check bool) "summary says terminating" true
        (contains line "terminating");
      Alcotest.(check bool) "summary says confluent" true
        (contains line "confluent"))
    Adt_specs.Corpus.all

(* {1 ADT002 and ADT022 cannot disagree (one shared analysis)} *)

let faulty_sources () =
  (* dune runtest runs from _build/default/test; a direct dune exec (the
     CI index-engine pass) runs from the repo root *)
  let base =
    Option.value ~default:"../specs"
      (List.find_opt Sys.file_exists [ "../specs"; "specs" ])
  in
  let dir = Filename.concat base "faulty" in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".adt")
  |> List.sort compare
  |> List.map (fun f ->
         let path = Filename.concat dir f in
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () -> (f, really_input_string ic (in_channel_length ic))))

let test_adt002_adt022_consistent () =
  let files = faulty_sources () in
  Alcotest.(check bool) "the faulty corpus is present" true
    (List.length files >= 10);
  List.iter
    (fun (file, src) ->
      match Parser.parse_specs ~env:(Library.to_env Library.builtin) src with
      | Error e -> Alcotest.failf "%s: %a" file Parser.pp_error e
      | Ok specs ->
        List.iter
          (fun spec ->
            let a = Verify.analyze spec in
            let diverging =
              List.exists
                (fun (_, verdict) ->
                  match verdict with
                  | Consistency.Diverges _ -> true
                  | _ -> false)
                a.Verify.report.Consistency.pairs
            in
            let adt002_diverging =
              List.exists
                (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
                (Verify.adt002 a)
            in
            let adt022_refuted =
              List.exists
                (fun d -> d.Diagnostic.severity = Diagnostic.Error)
                (Verify.adt022 a)
            in
            Alcotest.(check bool)
              (Fmt.str "%s %s: ADT002 divergence = divergent pairs" file
                 (Spec.name spec))
              diverging adt002_diverging;
            Alcotest.(check bool)
              (Fmt.str "%s %s: ADT022 error = divergent pairs" file
                 (Spec.name spec))
              diverging adt022_refuted)
          specs)
    files

(* {1 ADT020 agrees with exhaustive ground enumeration (qcheck)} *)

(* the ground truth, computed the expensive way: a tuple of constructor
   terms no executable axiom matches at the root, sought exhaustively *)
let ground_uncovered spec op ~size =
  let u = Enum.universe spec in
  let patterns =
    List.filter Axiom.is_executable (Spec.axioms_for op spec)
    |> List.map Axiom.lhs
  in
  let choices =
    List.map (fun s -> Enum.terms_up_to u s ~size) (Op.args op)
  in
  if List.exists (fun c -> c = []) choices then false
  else begin
    let exception Found in
    let check args =
      let t = Term.app op args in
      if not (List.exists (fun p -> Subst.matches ~pattern:p t) patterns)
      then raise Found
    in
    let rec product acc = function
      | [] -> check (List.rev acc)
      | cs :: rest -> List.iter (fun c -> product (c :: acc) rest) cs
    in
    try
      product [] choices;
      false
    with Found -> true
  end

let observer_pool () =
  List.concat_map
    (fun spec ->
      List.map (fun op -> (spec, op)) (Spec.observers spec))
    ([
       nat_spec;
       Adt_specs.Queue_spec.spec;
       Adt_specs.Stack_spec.default.Adt_specs.Stack_spec.spec;
       leaky_spec ();
       blend_spec ();
       sym_spec ();
       toggle_spec ();
     ]
    @ [ parse Test_analysis.free_rhs_src ])

let test_matrix_agrees_with_enumeration =
  let pool = observer_pool () in
  qcheck ~count:120 "ADT020 verdict = exhaustive ground coverage"
    QCheck2.Gen.(int_range 0 (List.length pool - 1))
    (fun i ->
      let spec, op = List.nth pool i in
      let r = Verify.completeness spec in
      match
        List.find_opt (fun h -> Op.equal h.Verify.hole_op op) r.Verify.holes
      with
      | Some h when h.Verify.decided -> ground_uncovered spec op ~size:3
      | Some _ -> true (* undecided: the matrix makes no claim *)
      | None -> not (ground_uncovered spec op ~size:3))

(* {1 An RPO-oriented system never loops (test_diff's harness)} *)

(* orientedness itself is asserted by the search tests above; here the
   qcheck harness drives random full-signature terms through the rewrite
   engine and demands that the generous budget is never exhausted *)
let no_loop_case spec =
  let ctx = Helpers.Corpus_gen.ctx_of spec in
  let sys = Rewrite.of_spec spec in
  qcheck ~count:200
    (Fmt.str "RPO-oriented %s never exhausts fuel" (Spec.name spec))
    (Helpers.Corpus_gen.term_gen ctx)
    (fun t ->
      match
        Rewrite.normalize_count ~strategy:Rewrite.Innermost ~fuel:100_000 sys t
      with
      | _ -> true
      | exception Rewrite.Out_of_fuel _ -> false)

let suite =
  [
    case "matrix: exhaustive" test_matrix_exhaustive;
    case "matrix: uncovered witness" test_matrix_uncovered_witness;
    case "matrix: usefulness" test_matrix_usefulness;
    case "matrix: parameter sorts are infinite" test_matrix_parameter_sort;
    case "matrix: ragged rows rejected" test_matrix_width_mismatch;
    case "search: orients the corpus" test_search_orients_corpus;
    case "search: commutativity is unorientable"
      test_search_rejects_commutativity;
    case "search: bumps beyond the dependency seed"
      test_search_bumps_beyond_seed;
    case "ADT020: boundary holes decided" test_completeness_holes_decided;
    case "ADT020: interior hole of a two-argument observer"
      test_completeness_interior_hole;
    case "ADT020: non-left-linear ground fallback"
      test_completeness_nonlinear_ground_fallback;
    case "status lattice on the seeded faults" test_statuses;
    case "orthogonal system fires only ADT021" test_flow_fires_only_adt021;
    case "the whole corpus verifies" test_corpus_verified;
    case "ADT002 and ADT022 agree on specs/faulty" test_adt002_adt022_consistent;
    test_matrix_agrees_with_enumeration;
  ]
  @ List.map no_loop_case
      [
        Adt_specs.Queue_spec.spec;
        Adt_specs.Stack_spec.default.Adt_specs.Stack_spec.spec;
        tally_spec ();
      ]
