open Adt
open Helpers

let prec = Ordering.of_list [ "isz"; "plus"; "s"; "z" ]
let gt = Ordering.lpo_gt prec

let test_subterm_property () =
  Alcotest.(check bool) "s(z) > z" true (gt (s z) z);
  Alcotest.(check bool) "plus(x,y) > x" true (gt (plus (v "x") (v "y")) (v "x"));
  Alcotest.(check bool) "deep subterm" true
    (gt (plus (s (v "x")) z) (v "x"))

let test_irreflexive () =
  let terms = [ z; s z; plus (v "x") (v "y"); v "x" ] in
  List.iter
    (fun t ->
      if gt t t then Alcotest.failf "%a > itself" Term.pp t)
    terms

let test_asymmetric () =
  let pairs =
    [ (s z, z); (plus (v "x") (v "y"), v "x"); (plus (s z) z, s (plus z z)) ]
  in
  List.iter
    (fun (a, b) ->
      if gt a b && gt b a then Alcotest.failf "%a and %a both greater" Term.pp a Term.pp b)
    pairs

let test_variable_condition () =
  Alcotest.(check bool) "nothing below a foreign variable" false
    (gt (s z) (v "x"));
  Alcotest.(check bool) "variables are minimal" false (gt (v "x") z);
  Alcotest.(check bool) "var vs var" false (gt (v "x") (v "y"))

let test_precedence_drives_heads () =
  (* plus > s: plus(x, y) > s(...) needs plus(x,y) > argument *)
  Alcotest.(check bool) "plus dominates s over same vars" true
    (gt (plus (v "x") (v "y")) (s (v "x")));
  Alcotest.(check bool) "not the converse" false
    (gt (s (v "x")) (plus (v "x") (v "y")))

let test_lexicographic_case () =
  (* same head: first argument decides *)
  Alcotest.(check bool) "plus(s(x), y) > plus(x, y)" true
    (gt (plus (s (v "x")) (v "y")) (plus (v "x") (v "y")));
  Alcotest.(check bool) "not the converse" false
    (gt (plus (v "x") (v "y")) (plus (s (v "x")) (v "y")))

let test_nat_axioms_orient () =
  let prec = Ordering.dependency nat_spec in
  Alcotest.(check bool) "all axioms decrease" true
    (Ordering.orients_all prec nat_axioms = Ok ())

let test_paper_specs_orient () =
  List.iter
    (fun (name, spec) ->
      let prec = Ordering.dependency spec in
      match Ordering.orients_all prec (Spec.axioms spec) with
      | Ok () -> ()
      | Error ax -> Alcotest.failf "%s: cannot orient %a" name Axiom.pp ax)
    [
      ("Queue", Adt_specs.Queue_spec.spec);
      ("BoundedQueue", Adt_specs.Bounded_queue_spec.spec);
      ("Stack", Adt_specs.Stack_spec.default.Adt_specs.Stack_spec.spec);
      ("Array", Adt_specs.Array_spec.default.Adt_specs.Array_spec.spec);
      ("Symboltable", Adt_specs.Symboltable_spec.spec);
      ("Knowlist", Adt_specs.Knowlist_spec.spec);
      ("Symboltable_knows", Adt_specs.Symboltable_knows_spec.spec);
    ]

let test_retrieve_definition_beyond_lpo () =
  (* a documented limitation: RETRIEVE' recurses through POP(stk), which is
     not an LPO-subterm of stk, so the definitional extension cannot be
     oriented by plain LPO even though rewriting terminates (the recursive
     call sits under a conditional that freezes until the stack takes
     constructor form). The precedence must fail exactly there. *)
  let spec = Adt_specs.Refinement.combined in
  let prec = Ordering.dependency spec in
  match Ordering.orients_all prec (Spec.axioms spec) with
  | Error ax -> Alcotest.(check string) "def_retrieve" "def_retrieve" (Axiom.name ax)
  | Ok () -> Alcotest.fail "expected def-retrieve to defeat plain LPO"

let test_orient () =
  (match Ordering.orient prec (plus z z, z) with
  | Ok (l, r) ->
    check_term "greater side" (plus z z) l;
    check_term "smaller side" z r
  | Error msg -> Alcotest.fail msg);
  (match Ordering.orient prec (z, plus z z) with
  | Ok (l, _) -> check_term "swapped" (plus z z) l
  | Error msg -> Alcotest.fail msg);
  match Ordering.orient prec (v "x", v "y") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oriented two variables"

let test_error_and_ite_minimal () =
  Alcotest.(check bool) "op > error" true (gt z (Term.err nat));
  Alcotest.(check bool) "op > ite of smaller pieces" true
    (gt (plus (v "x") (v "y")) (Term.ite Term.tt (v "x") (v "y")));
  Alcotest.(check bool) "ite > error" true
    (gt (Term.ite Term.tt z z) (Term.err nat))

let test_transitive_samples () =
  (* spot-check transitivity on concrete chains *)
  let a = plus (s z) (s z) and b = s (plus z (s z)) and c = s (s z) in
  Alcotest.(check bool) "a > b" true (gt a b);
  Alcotest.(check bool) "b > c" true (gt b c);
  Alcotest.(check bool) "a > c" true (gt a c)

let suite =
  [
    case "subterm property" test_subterm_property;
    case "irreflexivity" test_irreflexive;
    case "asymmetry" test_asymmetric;
    case "variable conditions" test_variable_condition;
    case "precedence on heads" test_precedence_drives_heads;
    case "lexicographic descent" test_lexicographic_case;
    case "dependency precedence orients Nat" test_nat_axioms_orient;
    case "dependency precedence orients every paper spec"
      test_paper_specs_orient;
    case "the RETRIEVE' definition exceeds plain LPO (documented)"
      test_retrieve_definition_beyond_lpo;
    case "orientation of equations" test_orient;
    case "error and if-then-else are minimal" test_error_and_ite_minimal;
    case "transitivity samples" test_transitive_samples;
  ]
