open Adt
open Helpers

let u = Enum.universe nat_spec

let test_terms_exactly () =
  check_terms "size 1" [ z ] (Enum.terms_exactly u nat ~size:1);
  check_terms "size 2" [ s z ] (Enum.terms_exactly u nat ~size:2);
  check_terms "size 3" [ s (s z) ] (Enum.terms_exactly u nat ~size:3);
  Alcotest.(check int) "size 0" 0 (List.length (Enum.terms_exactly u nat ~size:0))

let test_terms_up_to () =
  Alcotest.(check int) "count" 4 (List.length (Enum.terms_up_to u nat ~size:4));
  Alcotest.(check int) "count_up_to" 4 (Enum.count_up_to u nat ~size:4);
  (* increasing size order *)
  let sizes = List.map Term.size (Enum.terms_up_to u nat ~size:4) in
  Alcotest.(check (list int)) "ordered" [ 1; 2; 3; 4 ] sizes

let test_no_duplicates () =
  let ts = Enum.terms_up_to u nat ~size:6 in
  let distinct = List.sort_uniq Term.compare ts in
  Alcotest.(check int) "no duplicates" (List.length ts) (List.length distinct)

let test_all_constructor_ground () =
  List.iter
    (fun t ->
      if not (Spec.is_constructor_ground_term nat_spec t) then
        Alcotest.failf "%a is not a ground constructor term" Term.pp t)
    (Enum.terms_up_to u nat ~size:6)

let test_bool_enumeration () =
  (* true and false are implicit constructors of Bool *)
  Alcotest.(check int) "two booleans" 2
    (List.length (Enum.terms_up_to u Sort.bool ~size:3))

let test_branching_counts () =
  (* Queue over 4 items: size 1 -> NEW; size 3+2k enumerations grow by
     item-count multiples *)
  let uq = Enum.universe Adt_specs.Queue_spec.spec in
  let qsort = Adt_specs.Queue_spec.sort in
  Alcotest.(check int) "just NEW" 1 (List.length (Enum.terms_exactly uq qsort ~size:1));
  Alcotest.(check int) "no size-2 queues" 0
    (List.length (Enum.terms_exactly uq qsort ~size:2));
  Alcotest.(check int) "one-element queues" 4
    (List.length (Enum.terms_exactly uq qsort ~size:3));
  Alcotest.(check int) "two-element queues" 16
    (List.length (Enum.terms_exactly uq qsort ~size:5))

let test_atoms () =
  let atoms = fun sort -> if Sort.equal sort (Sort.v "Ghost") then [ z ] else [] in
  let u' = Enum.universe ~atoms nat_spec in
  Alcotest.(check int) "atom leaves" 1
    (List.length (Enum.leaves u' (Sort.v "Ghost")))

let test_substitutions () =
  let vars = [ ("a", nat); ("b", nat) ] in
  let subs = Enum.substitutions_up_to u vars ~size:3 in
  Alcotest.(check int) "3 x 3" 9 (List.length subs);
  List.iter
    (fun sub ->
      Alcotest.(check int) "binds both" 2 (Subst.cardinal sub))
    subs;
  Alcotest.(check int) "no vars: one empty substitution" 1
    (List.length (Enum.substitutions_up_to u [] ~size:3))

let test_random_term () =
  let state = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    match Enum.random_term u nat ~size:8 state with
    | Some t ->
      if not (Spec.is_constructor_ground_term nat_spec t) then
        Alcotest.failf "random term %a not a value" Term.pp t
    | None -> Alcotest.fail "no term generated"
  done;
  (* a sort with no generators gives None *)
  Alcotest.(check bool) "ghost sort" true
    (Enum.random_term u (Sort.v "Ghost") ~size:3 state = None)

let test_random_substitution () =
  let state = Random.State.make [| 7 |] in
  match Enum.random_substitution u [ ("a", nat); ("c", Sort.bool) ] ~size:4 state with
  | Some sub ->
    Alcotest.(check bool) "a bound" true (Subst.mem "a" sub);
    Alcotest.(check bool) "c bound" true (Subst.mem "c" sub)
  | None -> Alcotest.fail "no substitution"

let test_count_exactly () =
  for size = 1 to 6 do
    Alcotest.(check int)
      (Fmt.str "count_exactly %d" size)
      (List.length (Enum.terms_exactly u nat ~size))
      (Enum.count_exactly u nat ~size)
  done

let uq = Enum.universe Adt_specs.Queue_spec.spec
let qsort = Adt_specs.Queue_spec.sort

(* the samplers, property-tested: every drawn term is a well-sorted ground
   constructor term within the size bound — exact for [uniform_term],
   the documented "roughly bounded" slack for [random_term] *)
let sampled_term_sound sampler ~bound (seed, size) =
  let state = Random.State.make [| seed |] in
  match sampler uq qsort ~size state with
  | None -> false
  | Some t ->
    Spec.is_constructor_ground_term Adt_specs.Queue_spec.spec t
    && Term.size t <= bound size
    && Sort.equal (Term.sort_of t) qsort

let seed_and_size = QCheck2.Gen.(pair nat (int_range 1 7))

let prop_uniform_term_sound =
  qcheck "uniform terms are well-sorted values within the bound" seed_and_size
    (sampled_term_sound Enum.uniform_term ~bound:Fun.id)

let prop_random_term_sound =
  qcheck "random terms are well-sorted values, roughly bounded" seed_and_size
    (sampled_term_sound Enum.random_term ~bound:(fun size -> (2 * size) + 1))

let prop_uniform_substitution_sound =
  qcheck "uniform substitutions bind every variable to a bounded value"
    QCheck2.Gen.nat
    (fun seed ->
      let state = Random.State.make [| seed |] in
      let vars = [ ("q", qsort); ("i", Adt_specs.Builtins.item_sort) ] in
      match Enum.uniform_substitution uq vars ~size:5 state with
      | None -> false
      | Some sub ->
        List.for_all
          (fun (x, sort) ->
            match Subst.find x sub with
            | Some t ->
              Sort.equal (Term.sort_of t) sort
              && Term.size t <= 5
              && Spec.is_constructor_ground_term Adt_specs.Queue_spec.spec t
            | None -> false)
          vars)

let test_uniform_distribution () =
  (* 4 nat values of size <= 4; the uniform sampler must hit each about
     equally often — the depth-biased random_term could not pass this *)
  let state = Random.State.make [| 414243 |] in
  let counts = Hashtbl.create 4 in
  let draws = 4000 in
  for _ = 1 to draws do
    match Enum.uniform_term u nat ~size:4 state with
    | Some t ->
      let key = Term.to_string t in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    | None -> Alcotest.fail "no term"
  done;
  Alcotest.(check int) "full support" 4 (Hashtbl.length counts);
  Hashtbl.iter
    (fun key n ->
      (* each expects draws/4 = 1000; allow 15% slack *)
      if n < 850 || n > 1150 then
        Alcotest.failf "uniform draw hit %s %d times in %d" key n draws)
    counts

let suite =
  [
    case "terms of exact size" test_terms_exactly;
    case "terms up to a size" test_terms_up_to;
    case "no duplicates" test_no_duplicates;
    case "only ground constructor terms" test_all_constructor_ground;
    case "boolean universe" test_bool_enumeration;
    case "branching combinatorics (Queue)" test_branching_counts;
    case "caller-supplied atoms" test_atoms;
    case "bounded-exhaustive substitutions" test_substitutions;
    case "random terms are values" test_random_term;
    case "random substitutions" test_random_substitution;
    case "count_exactly agrees with the enumeration" test_count_exactly;
    prop_uniform_term_sound;
    prop_random_term_sound;
    prop_uniform_substitution_sound;
    case "uniform sampling is uniform" test_uniform_distribution;
  ]
