open Adt
open Helpers
open Adt_specs

let test_nat_complete () =
  let report = Completeness.check nat_spec in
  Alcotest.(check bool) "complete" true (Completeness.is_complete report);
  Alcotest.(check (list term_testable)) "nothing missing" []
    (Completeness.missing report)

let test_paper_specs_complete () =
  List.iter
    (fun (name, spec) ->
      let report = Completeness.check spec in
      if not (Completeness.is_complete report) then
        Alcotest.failf "%s not sufficiently complete: %a" name
          Fmt.(list ~sep:comma Term.pp)
          (Completeness.missing report))
    [
      ("Queue", Queue_spec.spec);
      ("BoundedQueue", Bounded_queue_spec.spec);
      ("Stack", Stack_spec.default.Stack_spec.spec);
      ("Array", Array_spec.default.Array_spec.spec);
      ("Symboltable", Symboltable_spec.spec);
      ("Knowlist", Knowlist_spec.spec);
      ("Symboltable_knows", Symboltable_knows_spec.spec);
      ("Identifier", Identifier.spec);
      ("Attributes", Attributes.spec);
      ("Bool", Builtins.bool_spec);
      ("Nat", Builtins.nat_spec);
    ]

let missing_of spec = Completeness.missing (Completeness.check spec)

let test_detects_missing_boundary () =
  let broken = Spec.without_axiom "3" Queue_spec.spec in
  match missing_of broken with
  | [ t ] -> Alcotest.(check string) "the missing case" "FRONT(NEW)" (Term.to_string t)
  | other ->
    Alcotest.failf "expected one missing case, got %a"
      Fmt.(list ~sep:comma Term.pp)
      other

let test_detects_missing_recursive_case () =
  let broken = Spec.without_axiom "6" Queue_spec.spec in
  match missing_of broken with
  | [ t ] ->
    Alcotest.(check string) "the missing case" "REMOVE(ADD(queue, item))"
      (Term.to_string t)
  | other ->
    Alcotest.failf "expected one missing case, got %a"
      Fmt.(list ~sep:comma Term.pp)
      other

let test_detects_multiple_missing () =
  (* with ALL of RETRIEVE's axioms gone, the checker expands the
     constructor cases a complete axiomatisation must cover *)
  let broken =
    Spec.without_axiom "7"
      (Spec.without_axiom "8" (Spec.without_axiom "9" Symboltable_spec.spec))
  in
  Alcotest.(check int) "three missing" 3 (List.length (missing_of broken));
  (* with two of them gone, the remaining axiom guides the split *)
  let broken2 = Spec.without_axiom "7" (Spec.without_axiom "8" Symboltable_spec.spec) in
  Alcotest.(check int) "two missing" 2 (List.length (missing_of broken2))

let test_second_argument_splitting () =
  (* an observer discriminating on its second argument *)
  let sg =
    Signature.add_op
      (Op.v "guard" ~args:[ nat; nat ] ~result:nat)
      base_signature
  in
  let guard a b = Term.app (Signature.find_op_exn "guard" sg) [ a; b ] in
  let spec =
    Spec.v ~name:"G" ~signature:sg ~constructors:[ "z"; "s" ]
      ~axioms:(nat_axioms @ [ Axiom.v ~name:"g0" ~lhs:(guard (v "a") z) ~rhs:z () ])
      ()
  in
  match missing_of spec with
  | [ t ] ->
    Alcotest.(check string) "missing successor case" "guard(n1, s(n))"
      (Term.to_string t)
  | other ->
    Alcotest.failf "expected one missing case, got %a"
      Fmt.(list ~sep:comma Term.pp)
      other

let test_general_lhs_covers_everything () =
  (* REPLACE(stk, arr) = ... has a fully general left-hand side *)
  let stack = Stack_spec.default in
  let report = Completeness.check_op stack.Stack_spec.spec
      (Spec.op_exn stack.Stack_spec.spec "REPLACE")
  in
  Alcotest.(check int) "single covered case" 1 (List.length report.Completeness.cases);
  Alcotest.(check bool) "covered" true
    (List.for_all (fun c -> c.Completeness.covered_by <> []) report.Completeness.cases)

let test_unconstrained_parameter_op () =
  (* an observer over a sort with no constructors and no axioms *)
  let item = Sort.v "I" in
  let sg =
    Signature.add_op
      (Op.v "weight" ~args:[ item ] ~result:Sort.bool)
      (Signature.add_sort item Signature.empty)
  in
  let spec = Spec.v ~name:"P" ~signature:sg ~axioms:[] () in
  let report = Completeness.check spec in
  Alcotest.(check bool) "still complete" true (Completeness.is_complete report);
  let op_report = List.hd report.Completeness.op_reports in
  Alcotest.(check bool) "flagged unconstrained" true
    op_report.Completeness.unconstrained

let test_overlap_detection () =
  let extra = Axiom.v ~name:"dup" ~lhs:(isz (v "k")) ~rhs:Term.ff () in
  let spec = Spec.with_axioms [ extra ] nat_spec in
  let report = Completeness.check spec in
  Alcotest.(check bool) "overlaps reported" true
    (Completeness.overlapping report <> [])

let test_report_rendering () =
  let text = Fmt.str "%a" Completeness.pp_report (Completeness.check nat_spec) in
  Alcotest.(check bool) "mentions verdict" true
    (Astring_contains.contains text "sufficiently complete");
  let broken = Spec.without_axiom "iz" nat_spec in
  let text' = Fmt.str "%a" Completeness.pp_report (Completeness.check broken) in
  Alcotest.(check bool) "mentions MISSING" true
    (Astring_contains.contains text' "MISSING")

let suite =
  [
    case "a complete spec passes" test_nat_complete;
    case "every paper spec is sufficiently complete" test_paper_specs_complete;
    case "missing boundary case found (FRONT(NEW))" test_detects_missing_boundary;
    case "missing recursive case found" test_detects_missing_recursive_case;
    case "several missing cases found" test_detects_multiple_missing;
    case "splitting on a non-first argument" test_second_argument_splitting;
    case "general left-hand sides cover all cases" test_general_lhs_covers_everything;
    case "parameter operations are unconstrained, not incomplete"
      test_unconstrained_parameter_op;
    case "overlapping axioms reported" test_overlap_detection;
    case "report rendering" test_report_rendering;
  ]
