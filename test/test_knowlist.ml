open Adt
open Helpers
open Adt_specs

let interp = Interp.create Knowlist_spec.spec
let kinterp = Interp.create Symboltable_knows_spec.spec
let idx = Identifier.id
let attrs = Attributes.attrs

let test_is_in () =
  let k = Knowlist_spec.of_ids [ idx "X"; idx "Y" ] in
  Alcotest.(check (option bool)) "member" (Some true)
    (Interp.eval_bool interp (Knowlist_spec.is_in k (idx "X")));
  Alcotest.(check (option bool)) "member 2" (Some true)
    (Interp.eval_bool interp (Knowlist_spec.is_in k (idx "Y")));
  Alcotest.(check (option bool)) "non-member" (Some false)
    (Interp.eval_bool interp (Knowlist_spec.is_in k (idx "Z")));
  Alcotest.(check (option bool)) "empty list" (Some false)
    (Interp.eval_bool interp (Knowlist_spec.is_in Knowlist_spec.create (idx "X")))

let test_impl_model () =
  let u = Enum.universe Knowlist_spec.spec in
  match Model.check u Knowlist_impl.model ~size:5 with
  | Ok n -> Alcotest.(check bool) "ran" true (n > 20)
  | Error cex -> Alcotest.failf "%a" Model.pp_counterexample cex

let test_impl_ops () =
  let k = Knowlist_impl.of_ids [ idx "X" ] in
  Alcotest.(check bool) "in" true (Knowlist_impl.is_in k (idx "X"));
  Alcotest.(check bool) "out" false (Knowlist_impl.is_in k (idx "Y"));
  let k2 = Knowlist_impl.append k (idx "Y") in
  Alcotest.(check bool) "appended" true (Knowlist_impl.is_in k2 (idx "Y"));
  check_term "Phi" (Knowlist_spec.of_ids [ idx "X"; idx "Y" ])
    (Knowlist_impl.abstraction k2)

(* {2 The knows-list symbol table} *)

let eval_attrs t =
  match Interp.eval kinterp t with
  | Interp.Value v -> Some v
  | Interp.Error_value _ -> None
  | other -> Alcotest.failf "unexpected %a" Interp.pp_value other

let test_knows_blocks_inheritance () =
  let open Symboltable_knows_spec in
  let outer = add (add init (idx "X") (attrs 1)) (idx "Y") (attrs 2) in
  let inner = enterblock outer (Knowlist_spec.of_ids [ idx "X" ]) in
  check_term "known global" (attrs 1)
    (Option.get (eval_attrs (retrieve inner (idx "X"))));
  Alcotest.(check bool) "unknown global blocked" true
    (eval_attrs (retrieve inner (idx "Y")) = None);
  (* locals always beat the knows list *)
  let inner' = add inner (idx "Y") (attrs 3) in
  check_term "local wins" (attrs 3)
    (Option.get (eval_attrs (retrieve inner' (idx "Y"))))

let test_knows_leaveblock () =
  let open Symboltable_knows_spec in
  let outer = add init (idx "X") (attrs 1) in
  let inner = enterblock outer Knowlist_spec.create in
  let restored = leaveblock inner in
  check_term "restored" (attrs 1)
    (Option.get (eval_attrs (retrieve restored (idx "X"))))

let test_changed_axioms_claim () =
  let changed, kept = Symboltable_knows_spec.changed_axioms () in
  let head_is_symboltable ax =
    let head = Axiom.head ax in
    List.exists (Sort.equal Symboltable_spec.sort) (Op.result head :: Op.args head)
  in
  let changed_st = List.filter head_is_symboltable changed in
  Alcotest.(check int) "exactly the three ENTERBLOCK axioms" 3
    (List.length changed_st);
  List.iter
    (fun ax ->
      let mentions =
        Term.count_op "ENTERBLOCK" (Axiom.lhs ax)
        + Term.count_op "ENTERBLOCK" (Axiom.rhs ax)
      in
      if mentions = 0 then
        Alcotest.failf "changed axiom %a does not mention ENTERBLOCK" Axiom.pp ax)
    changed_st;
  Alcotest.(check int) "six axioms survive verbatim" 6
    (List.length (List.filter head_is_symboltable kept))

let test_knows_spec_checks () =
  Alcotest.(check bool) "sufficiently complete" true
    (Completeness.is_complete (Completeness.check Symboltable_knows_spec.spec));
  let report = Consistency.check Symboltable_knows_spec.spec in
  Alcotest.(check bool) "consistent" true
    (Consistency.is_consistent Symboltable_knows_spec.spec report)

let suite =
  [
    case "IS_IN? membership" test_is_in;
    case "list implementation models the axioms" test_impl_model;
    case "list implementation operations" test_impl_ops;
    case "knows lists gate inheritance" test_knows_blocks_inheritance;
    case "LEAVEBLOCK through a knows block" test_knows_leaveblock;
    case "only ENTERBLOCK axioms changed (the paper's claim)"
      test_changed_axioms_claim;
    case "the variant is complete and consistent" test_knows_spec_checks;
  ]
