(* The conformance harness: generated suites pass on every clean
   implementation and kill the entire mutation corpus — the acceptance
   criteria of the testgen subsystem, as executable facts. *)

open Adt
open Helpers
open Testgen

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> int_of_string s
  | None -> 414243

let test_clean_impls_pass () =
  List.iter
    (fun impl ->
      let report = Harness.conformance ~count:60 ~seed impl in
      if not (Harness.passed report) then
        Alcotest.failf "clean %a fails its own suite:@,%a" Impl.pp impl
          Harness.pp_report report)
    Registry.clean

let test_mutation_corpus_fully_killed () =
  List.iter
    (fun impl ->
      let report = Harness.conformance ~count:200 ~seed impl in
      if not (Harness.killed report) then
        Alcotest.failf "mutant %a SURVIVED its suite" Impl.pp impl)
    Registry.mutants

let first_failure report =
  match Harness.failures report with
  | (axiom, f) :: _ -> (axiom, f)
  | [] -> Alcotest.fail "expected a failure"

(* The reproduction contract: a failure's seed, replayed as the run seed,
   regenerates the identical counterexample at trial 0. *)
let test_seed_reproduces_counterexample () =
  List.iter
    (fun impl ->
      let t = Harness.compile impl in
      let axiom, f = first_failure (Harness.run ~count:200 ~seed t) in
      let axiom', f' = first_failure (Harness.run ~count:1 ~seed:f.Harness.fail_seed t) in
      Alcotest.(check string) "same axiom" (Axiom.name axiom) (Axiom.name axiom');
      Alcotest.(check subst_testable) "same valuation" f.Harness.valuation
        f'.Harness.valuation;
      Alcotest.(check int) "trial 0" f.Harness.fail_seed f'.Harness.fail_seed)
    Registry.mutants

let test_counterexamples_are_minimal () =
  (* the LIFO front mutant's minimal counterexample needs two distinct
     items on the queue: q one item, i a different one *)
  let impl =
    Option.get (Registry.find ~spec:"Queue" ~impl:"mutant-lifo-front")
  in
  let _, f = first_failure (Harness.conformance ~count:200 ~seed impl) in
  Alcotest.(check bool) "shrunk" true f.Harness.shrunk;
  let total_size =
    List.fold_left
      (fun acc (_, t) -> acc + Term.size t)
      0
      (Subst.bindings f.Harness.valuation)
  in
  Alcotest.(check int) "q is one ADD, i an item" 4 total_size

let test_replace_mutant_needs_nested_observation () =
  (* stack REPLACE-pushes leaves TOP unchanged: only an observation that
     first pops can see the extra element *)
  let impl =
    Option.get (Registry.find ~spec:"Stack" ~impl:"mutant-replace-pushes")
  in
  let _, f = first_failure (Harness.conformance ~count:200 ~seed impl) in
  match f.Harness.witness with
  | Harness.Observation { context; _ } ->
    Alcotest.(check bool)
      (Fmt.str "context %a is nested" Term.pp context)
      true
      (Term.size context > 2)
  | _ -> Alcotest.fail "expected an observational witness"

let test_registry_lookup () =
  Alcotest.(check int) "clean corpus" 8 (List.length Registry.clean);
  Alcotest.(check int) "mutation corpus" 7 (List.length Registry.mutants);
  Alcotest.(check bool) "case-insensitive" true
    (Registry.find ~spec:"queue" ~impl:"TWO-LIST" <> None);
  Alcotest.(check bool) "default impl" true
    (match Registry.default_for "Queue" with
    | Some e -> Impl.name e = "two-list" && not (Impl.is_mutant e)
    | None -> false);
  List.iter
    (fun m ->
      let clean_name = Option.get (Impl.mutant_of m) in
      Alcotest.(check bool)
        (Fmt.str "%a names its clean origin" Impl.pp m)
        true
        (Registry.find ~spec:(Impl.spec_name m) ~impl:clean_name <> None))
    Registry.mutants

let test_runs_are_deterministic () =
  let t =
    Harness.compile
      (Option.get (Registry.find ~spec:"Queue" ~impl:"mutant-remove-back"))
  in
  let r1 = Harness.run ~count:50 ~seed t and r2 = Harness.run ~count:50 ~seed t in
  let f1 = snd (first_failure r1) and f2 = snd (first_failure r2) in
  Alcotest.(check subst_testable) "same valuation" f1.Harness.valuation
    f2.Harness.valuation;
  Alcotest.(check int) "same seed" f1.Harness.fail_seed f2.Harness.fail_seed

let suite =
  [
    case "clean implementations pass their generated suites"
      test_clean_impls_pass;
    case "the mutation corpus is fully killed"
      test_mutation_corpus_fully_killed;
    case "a failure's seed reproduces it as trial 0"
      test_seed_reproduces_counterexample;
    case "counterexamples are shrunk to minimal valuations"
      test_counterexamples_are_minimal;
    case "the replace-pushes mutant needs a nested observation"
      test_replace_mutant_needs_nested_observation;
    case "registry lookup and mutation-corpus integrity" test_registry_lookup;
    case "identical seeds give identical reports" test_runs_are_deterministic;
  ]
