(* The bounded LRU cache (Adt.Lru) behind Rewrite.Memo and the engine's
   shared normal-form cache: deterministic unit tests plus qcheck
   model-based properties against a reference implementation (an
   MRU-first association list). *)

open Adt
open Helpers

module Cache = Lru.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

(* {1 Unit tests} *)

let test_hit_after_put () =
  let c = Cache.create ~capacity:4 () in
  Cache.add c 1 "one";
  Cache.add c 2 "two";
  Alcotest.(check (option string)) "hit" (Some "one") (Cache.find c 1);
  Alcotest.(check (option string)) "hit" (Some "two") (Cache.find c 2);
  Alcotest.(check (option string)) "miss" None (Cache.find c 3);
  Cache.add c 1 "uno";
  Alcotest.(check (option string)) "replaced" (Some "uno") (Cache.find c 1);
  Alcotest.(check int) "replace keeps one entry" 2 (Cache.length c)

let test_eviction_order () =
  let c = Cache.create ~capacity:3 () in
  Cache.add c 1 "a";
  Cache.add c 2 "b";
  Cache.add c 3 "c";
  (* touch 1: now 2 is the least recently used *)
  ignore (Cache.find c 1);
  Cache.add c 4 "d";
  Alcotest.(check (option string)) "2 evicted" None (Cache.peek c 2);
  Alcotest.(check (option string)) "1 survived (was touched)" (Some "a")
    (Cache.peek c 1);
  Alcotest.(check (option string)) "3 survived" (Some "c") (Cache.peek c 3);
  Alcotest.(check (option string)) "4 present" (Some "d") (Cache.peek c 4);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check (list (pair int string)))
    "recency order (MRU first)"
    [ (4, "d"); (1, "a"); (3, "c") ]
    (Cache.to_list c)

let test_peek_is_recency_neutral () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c 1 "a";
  Cache.add c 2 "b";
  ignore (Cache.peek c 1);
  (* peek must not have promoted 1 *)
  Cache.add c 3 "c";
  Alcotest.(check (option string)) "1 evicted despite peek" None (Cache.peek c 1)

let test_capacity_one () =
  let c = Cache.create ~capacity:1 () in
  Cache.add c 1 "a";
  Cache.add c 2 "b";
  Alcotest.(check int) "length 1" 1 (Cache.length c);
  Alcotest.(check (option string)) "latest wins" (Some "b") (Cache.peek c 2);
  Alcotest.(check int) "evicted" 1 (Cache.evictions c)

let test_clear () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c 1 "a";
  Cache.add c 2 "b";
  Cache.add c 3 "c";
  Cache.clear c;
  Alcotest.(check int) "empty" 0 (Cache.length c);
  Alcotest.(check int) "evictions reset" 0 (Cache.evictions c);
  Alcotest.(check (option string)) "gone" None (Cache.find c 2)

(* {1 Model-based qcheck properties}

   Reference model: an MRU-first association list with the same
   interface. After an arbitrary operation sequence the real cache must
   agree with the model on contents, recency order, and eviction count. *)

type op = Add of int * int | Find of int

let model_add capacity (entries, evictions) k v =
  let entries = (k, v) :: List.remove_assoc k entries in
  if List.length entries > capacity then
    (List.filteri (fun i _ -> i < capacity) entries, evictions + 1)
  else (entries, evictions)

let model_find (entries, evictions) k =
  match List.assoc_opt k entries with
  | None -> (entries, evictions)
  | Some v -> ((k, v) :: List.remove_assoc k entries, evictions)

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun k v -> Add (k, v)) (int_range 0 9) (int_range 0 99);
        map (fun k -> Find k) (int_range 0 9);
      ])

let scenario_gen =
  QCheck2.Gen.(pair (int_range 1 6) (list_size (int_range 0 80) op_gen))

let run_scenario (capacity, ops) =
  let cache = Cache.create ~capacity () in
  let model =
    List.fold_left
      (fun model op ->
        match op with
        | Add (k, v) ->
          Cache.add cache k v;
          model_add capacity model k v
        | Find k ->
          let real = Cache.find cache k in
          let model = model_find model k in
          assert (real = List.assoc_opt k (fst model));
          model)
      ([], 0) ops
  in
  (cache, model)

let prop_capacity_never_exceeded (capacity, ops) =
  let cache, _ = run_scenario (capacity, ops) in
  Cache.length cache <= capacity

let prop_matches_model (capacity, ops) =
  let cache, (entries, evictions) = run_scenario (capacity, ops) in
  Cache.to_list cache = entries && Cache.evictions cache = evictions

let suite =
  [
    case "hit after put" test_hit_after_put;
    case "least recently used is evicted first" test_eviction_order;
    case "peek does not refresh recency" test_peek_is_recency_neutral;
    case "capacity one" test_capacity_one;
    case "clear resets everything" test_clear;
    qcheck "capacity never exceeded" scenario_gen prop_capacity_never_exceeded;
    qcheck "contents, recency order and evictions match the model"
      scenario_gen prop_matches_model;
  ]
