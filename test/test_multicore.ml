(* Domain-parallel engine invariants: the metrics merge law (a snapshot
   after quiescence is the exact merge-fold of the per-domain stripes),
   exactness of concurrent dispatch counting, and lazy materialization of
   per-domain interpreter slots. These run real Domain.spawn parallelism
   even on a single-core machine — correctness must not depend on the
   interleaving. *)

open Adt_specs
open Engine

let handle session line =
  match Dispatch.handle_line session line with
  | Dispatch.Reply r -> r
  | Dispatch.Silent -> "<silent>"
  | Dispatch.Closed -> "<closed>"

let check_prefix what prefix got =
  Alcotest.(check bool)
    (Fmt.str "%s: %S starts with %S" what got prefix)
    true
    (String.length got >= String.length prefix
    && String.equal (String.sub got 0 (String.length prefix)) prefix)

let test_metrics_merge_law () =
  let m = Metrics.create ~stripes:4 () in
  let n_domains = 4 and per = 100 in
  let domains =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Metrics.record_request m "normalize";
              (* 0.25 is exact in binary: float sums must merge exactly *)
              Metrics.record_outcome m ~latency:0.25 ~fuel:3 ~error:false ()
            done))
  in
  List.iter Domain.join domains;
  let total = n_domains * per in
  let snap = Metrics.snapshot m in
  Alcotest.(check int) "requests exact" total snap.Metrics.requests;
  Alcotest.(check (option int))
    "per-kind counter exact" (Some total)
    (List.assoc_opt "normalize" (Metrics.by_kind snap));
  Alcotest.(check int) "no observation lost by the latency histogram" total
    (Obs.Hist.count snap.Metrics.latency);
  Alcotest.(check (float 0.0))
    "latency sum merges exactly"
    (0.25 *. float_of_int total)
    (Obs.Hist.sum snap.Metrics.latency);
  Alcotest.(check int) "fuel histogram exact" total
    (Obs.Hist.count snap.Metrics.fuel_hist);
  Alcotest.(check int) "errors untouched" 0 snap.Metrics.errors;
  (* the merge law itself: snapshot = fold merge over the stripe
     decomposition, bucket by bucket *)
  let stripes = Metrics.stripe_snapshots m in
  Alcotest.(check int) "stripe count" 4 (List.length stripes);
  let folded =
    List.fold_left Metrics.merge (List.hd stripes) (List.tl stripes)
  in
  Alcotest.(check int) "folded requests" snap.Metrics.requests
    folded.Metrics.requests;
  Alcotest.(check int) "folded latency count"
    (Obs.Hist.count snap.Metrics.latency)
    (Obs.Hist.count folded.Metrics.latency);
  Alcotest.(check (array int))
    "folded latency buckets"
    (Obs.Hist.bucket_counts snap.Metrics.latency)
    (Obs.Hist.bucket_counts folded.Metrics.latency);
  Alcotest.(check (float 0.0))
    "folded latency sum"
    (Obs.Hist.sum snap.Metrics.latency)
    (Obs.Hist.sum folded.Metrics.latency);
  (* striping actually happened: the work did not all convoy on one
     stripe (domain ids are monotonic, so a fresh pool spreads) *)
  let nonzero =
    List.length
      (List.filter (fun s -> s.Metrics.requests > 0) stripes)
  in
  Alcotest.(check bool) "work spread over stripes" true (nonzero >= 2)

let test_concurrent_dispatch_exact () =
  let session = Session.create ~stripes:8 [ Queue_spec.spec ] in
  let n_domains = 4 and per = 50 in
  let domains =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              check_prefix "parallel normalize" "ok normalize"
                (handle session
                   "normalize Queue FRONT(REMOVE(ADD(ADD(NEW, ITEM1), ITEM2)))")
            done))
  in
  List.iter Domain.join domains;
  let total = n_domains * per in
  let snap = Metrics.snapshot (Session.metrics session) in
  Alcotest.(check int) "every request counted exactly once" total
    snap.Metrics.requests;
  Alcotest.(check int) "no errors under parallel dispatch" 0
    snap.Metrics.errors;
  Alcotest.(check int) "latency histogram complete" total
    (Obs.Hist.count snap.Metrics.latency);
  (* the Prometheus exposition serves the same exact numbers *)
  let body = Session.prometheus session in
  let has fragment =
    let fl = String.length fragment and bl = String.length body in
    let rec go i =
      i + fl <= bl && (String.equal (String.sub body i fl) fragment || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "scrape agrees with the exact total" true
    (has (Fmt.str "adtc_requests_total %g" (float_of_int total)));
  Alcotest.(check bool) "scrape agrees on the kind series" true
    (has
       (Fmt.str "adtc_requests_kind_total{kind=\"normalize\"} %g"
          (float_of_int total)))

let test_lazy_interpreter_slots () =
  let session = Session.create ~stripes:8 [ Queue_spec.spec ] in
  check_prefix "main-domain request" "ok normalize"
    (handle session "normalize Queue IS_EMPTY?(NEW)");
  let c1 = Session.cache_totals session in
  Alcotest.(check bool) "slot 0 materialized" true (c1.Session.capacity > 0);
  (* more main-domain traffic creates no new slots: single-threaded
     behavior (and its stats output) is unchanged by striping *)
  check_prefix "again" "ok normalize"
    (handle session "normalize Queue IS_EMPTY?(NEW)");
  Alcotest.(check int) "same capacity from one domain" c1.Session.capacity
    (Session.cache_totals session).Session.capacity;
  (* requests from fresh domains fork their own slots on demand *)
  let domains =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            handle session "normalize Queue IS_EMPTY?(NEW)"))
  in
  List.iter
    (fun d -> check_prefix "domain request" "ok normalize" (Domain.join d))
    domains;
  let c2 = Session.cache_totals session in
  Alcotest.(check bool) "new domains materialized new slots" true
    (c2.Session.capacity > c1.Session.capacity);
  (* slot 0's memo kept working across the striping: the main domain's
     repeat request above was a warm hit *)
  Alcotest.(check bool) "memo still effective" true (c2.Session.hits >= 1)

let suite =
  [
    Helpers.case "metrics snapshot = exact merge-fold of domain stripes"
      test_metrics_merge_law;
    Helpers.case "parallel dispatch counts every request exactly once"
      test_concurrent_dispatch_exact;
    Helpers.case "interpreter slots fork lazily per domain"
      test_lazy_interpreter_slots;
  ]
