open Adt
open Helpers

let test_sort_of () =
  Alcotest.check sort_testable "var" nat (Term.sort_of (v "x"));
  Alcotest.check sort_testable "app" nat (Term.sort_of (plus z z));
  Alcotest.check sort_testable "err" nat (Term.sort_of (Term.err nat));
  Alcotest.check sort_testable "ite" nat
    (Term.sort_of (Term.ite Term.tt z (s z)));
  Alcotest.check sort_testable "bool" Sort.bool (Term.sort_of (isz z))

let test_app_checks_arity () =
  Alcotest.check_raises "too few" (Term.Ill_sorted "s applied to 0 arguments, expects 1")
    (fun () -> ignore (Term.app succ_op []));
  match Term.app plus_op [ z ] with
  | exception Term.Ill_sorted _ -> ()
  | _ -> Alcotest.fail "arity violation accepted"

let test_app_checks_sorts () =
  match Term.app succ_op [ isz z ] with
  | exception Term.Ill_sorted _ -> ()
  | _ -> Alcotest.fail "sort violation accepted"

let test_ite_checks () =
  (match Term.ite z z z with
  | exception Term.Ill_sorted _ -> ()
  | _ -> Alcotest.fail "non-bool condition accepted");
  match Term.ite Term.tt z Term.tt with
  | exception Term.Ill_sorted _ -> ()
  | _ -> Alcotest.fail "mismatched branches accepted"

let test_equal_compare () =
  let t1 = plus (s z) (v "x") in
  let t2 = plus (s z) (v "x") in
  let t3 = plus (s z) (v "y") in
  Alcotest.(check bool) "equal" true (Term.equal t1 t2);
  Alcotest.(check bool) "not equal" false (Term.equal t1 t3);
  Alcotest.(check int) "compare self" 0 (Term.compare t1 t2);
  Alcotest.(check bool) "total" true (Term.compare t1 t3 <> 0);
  (* antisymmetry on this pair *)
  Alcotest.(check bool) "antisym" true
    (Term.compare t1 t3 = -Term.compare t3 t1)

let test_size_depth () =
  Alcotest.(check int) "size const" 1 (Term.size z);
  Alcotest.(check int) "size" 4 (Term.size (plus (s z) (v "x")));
  Alcotest.(check int) "depth" 3 (Term.depth (plus (s z) (v "x")));
  Alcotest.(check int) "ite size" 4 (Term.size (Term.ite Term.tt z (v "x")));
  Alcotest.(check int) "church" 11 (Term.size (church 10))

let test_vars () =
  let t = plus (v "x") (plus (v "y") (v "x")) in
  Alcotest.(check (list (pair string sort_testable)))
    "first-occurrence order"
    [ ("x", nat); ("y", nat) ]
    (Term.vars t);
  Alcotest.(check bool) "ground" true (Term.is_ground (church 3));
  Alcotest.(check bool) "not ground" false (Term.is_ground t)

let test_ops_count () =
  let t = plus (s (s z)) (v "x") in
  Alcotest.(check bool) "ops" true (Op.Set.mem succ_op (Term.ops t));
  Alcotest.(check int) "count s" 2 (Term.count_op "s" t);
  Alcotest.(check int) "count plus" 1 (Term.count_op "plus" t);
  Alcotest.(check int) "count absent" 0 (Term.count_op "nope" t)

let test_positions () =
  let t = plus (s z) (v "x") in
  Alcotest.(check int) "number of positions" (Term.size t)
    (List.length (Term.positions t));
  check_term "root" t (Option.get (Term.subterm_at t []));
  check_term "child 0" (s z) (Option.get (Term.subterm_at t [ 0 ]));
  check_term "nested" z (Option.get (Term.subterm_at t [ 0; 0 ]));
  Alcotest.(check bool) "out of range" true
    (Term.subterm_at t [ 7 ] = None)

let test_replace_at () =
  let t = plus (s z) (v "x") in
  check_term "replace root" z (Option.get (Term.replace_at t [] z));
  check_term "replace nested"
    (plus (s (v "y")) (v "x"))
    (Option.get (Term.replace_at t [ 0; 0 ] (v "y")));
  Alcotest.(check bool) "bad position" true
    (Term.replace_at t [ 5; 0 ] z = None);
  (* replace inside an if-then-else *)
  let ite = Term.ite (isz (v "c")) z (s z) in
  check_term "ite cond"
    (Term.ite (isz z) z (s z))
    (Option.get (Term.replace_at ite [ 0; 0 ] z))

let test_subterms_fold () =
  let t = plus (s z) z in
  Alcotest.(check int) "subterms" 4 (List.length (Term.subterms t));
  Alcotest.(check int) "fold counts nodes" 4
    (Term.fold (fun n _ -> n + 1) 0 t)

let test_rename_map_vars () =
  let t = plus (v "x") (v "y") in
  check_term "rename"
    (plus (v "x_1") (v "y_1"))
    (Term.rename (fun x -> x ^ "_1") t);
  check_term "map_vars"
    (plus z (v "y"))
    (Term.map_vars (fun x sort -> if x = "x" then z else Term.var x sort) t)

let test_fresh_wrt () =
  Alcotest.(check string) "free" "q" (Term.fresh_wrt ~avoid:[] "q" nat);
  Alcotest.(check string) "taken" "q1"
    (Term.fresh_wrt ~avoid:[ ("q", nat) ] "q" nat);
  Alcotest.(check string) "taken twice" "q2"
    (Term.fresh_wrt ~avoid:[ ("q", nat); ("q1", nat) ] "q" nat)

let test_check () =
  Alcotest.(check bool) "well formed" true
    (Term.check base_signature (plus z (s z)) = Ok ());
  let rogue = Op.v "rogue" ~args:[] ~result:nat in
  Alcotest.(check bool) "undeclared op" true
    (Result.is_error (Term.check base_signature (Term.const rogue)));
  let wrong_rank = Op.v "plus" ~args:[ nat ] ~result:nat in
  Alcotest.(check bool) "wrong rank" true
    (Result.is_error (Term.check base_signature (Term.app wrong_rank [ z ])))

let test_hash_consing () =
  (* equal constructions are the same heap value, with the same id *)
  let a = plus (s z) (v "x") in
  let b = plus (s z) (v "x") in
  Alcotest.(check bool) "app f xs == app f xs" true (a == b);
  Alcotest.(check int) "same id" (Term.id a) (Term.id b);
  Alcotest.(check int) "same hash" (Term.hash a) (Term.hash b);
  Alcotest.(check bool) "distinct terms get distinct ids" true
    (Term.id a <> Term.id (plus (s z) (v "y")));
  Alcotest.(check bool) "vars shared" true (v "x" == v "x");
  Alcotest.(check bool) "errors shared" true (Term.err nat == Term.err nat);
  Alcotest.(check bool) "ite shared" true
    (Term.ite Term.tt z (s z) == Term.ite Term.tt z (s z));
  (* physical equality agrees with deep structural comparison *)
  Alcotest.(check bool) "structural_equal" true (Term.structural_equal a b);
  let live, total = Term.intern_stats () in
  Alcotest.(check bool) "intern table sane" true (live <= total && live > 0)

let test_ids_stable_under_substitution () =
  let t = plus (v "x") (plus z (v "y")) in
  (* the identity substitution returns the term itself, not a copy *)
  Alcotest.(check bool) "map_vars identity is physical identity" true
    (Term.map_vars Term.var t == t);
  (* subterms untouched by a real substitution keep their identity *)
  let right = Option.get (Term.subterm_at t [ 1 ]) in
  let t' =
    Term.map_vars (fun x sort -> if x = "x" then z else Term.var x sort) t
  in
  check_term "substitution applied" (plus z (plus z (v "y"))) t';
  Alcotest.(check bool) "untouched branch keeps its id" true
    (Option.get (Term.subterm_at t' [ 1 ]) == right)

(* Regression (PR 7): intern held a raw Mutex.lock across the weak-table
   probe, so any exception inside the critical section left the lock held
   and deadlocked every later construction hashing into the same shard.
   With Mutex.protect, an injected failure propagates — and interning the
   very same term afterwards still works. *)
let test_intern_exception_safety () =
  let fired = ref 0 in
  Term.intern_fault_hook :=
    Some
      (fun () ->
        incr fired;
        failwith "injected intern fault");
  Fun.protect ~finally:(fun () -> Term.intern_fault_hook := None)
  @@ fun () ->
  (match Term.var "intern_fault_probe" nat with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "the injected fault did not fire");
  Alcotest.(check int) "hook fired inside the critical section" 1 !fired;
  Term.intern_fault_hook := None;
  (* the shard lock was released: this interns instead of deadlocking *)
  let t = Term.var "intern_fault_probe" nat in
  Alcotest.(check bool) "same shard interns after the fault" true
    (t == Term.var "intern_fault_probe" nat)

(* Domains hammering overlapping constructions must agree on identity:
   equal terms are pointer-equal across domains (they met in the same
   shard), distinct terms have distinct ids (one atomic counter). *)
let test_multi_domain_interning () =
  let n_domains = 4 and depth = 40 in
  let build d =
    (* shared: church numerals every domain builds; private: a variable
       spine only this domain builds *)
    let shared = Array.init depth church in
    let private_ =
      Array.init depth (fun i -> v (Fmt.str "dom%d_x%d" d i))
    in
    (shared, private_)
  in
  let results =
    Array.init n_domains (fun d -> Domain.spawn (fun () -> build d))
    |> Array.map Domain.join
  in
  (* pointer equality across domains on the shared terms *)
  let shared0, _ = results.(0) in
  Array.iteri
    (fun d (shared, _) ->
      Array.iteri
        (fun i t ->
          Alcotest.(check bool)
            (Fmt.str "church %d from domain %d is the domain-0 node" i d)
            true (t == shared0.(i)))
        shared)
    results;
  (* id uniqueness across every distinct term built by any domain *)
  let all_ids =
    Array.to_list results
    |> List.concat_map (fun (shared, private_) ->
           List.map Term.id
             (List.sort_uniq Term.compare
                (Array.to_list shared @ Array.to_list private_)))
  in
  let distinct_terms =
    (* shared churches counted once, private spines once per domain *)
    depth + (n_domains * depth)
  in
  Alcotest.(check int) "every distinct term has a distinct id"
    distinct_terms
    (List.length (List.sort_uniq Int.compare all_ids));
  let _, total = Term.intern_stats () in
  Alcotest.(check bool) "the id counter covers every id" true
    (List.for_all (fun id -> id >= 1 && id <= total) all_ids)

let test_pp () =
  Alcotest.(check string) "const" "z" (Term.to_string z);
  Alcotest.(check string) "nested" "plus(s(z), x)"
    (Term.to_string (plus (s z) (v "x")));
  Alcotest.(check string) "error" "error" (Term.to_string (Term.err nat));
  Alcotest.(check string) "ite" "if isz(x) then z else s(z)"
    (Term.to_string (Term.ite (isz (v "x")) z (s z)))

let suite =
  [
    case "sort_of on every form" test_sort_of;
    case "application arity is checked" test_app_checks_arity;
    case "application sorts are checked" test_app_checks_sorts;
    case "if-then-else is checked" test_ite_checks;
    case "equality and comparison" test_equal_compare;
    case "size and depth" test_size_depth;
    case "free variables" test_vars;
    case "operation collection and counting" test_ops_count;
    case "positions and subterm_at" test_positions;
    case "replace_at" test_replace_at;
    case "subterms and fold" test_subterms_fold;
    case "rename and map_vars" test_rename_map_vars;
    case "fresh variable names" test_fresh_wrt;
    case "deep signature check" test_check;
    case "hash-consing invariants" test_hash_consing;
    case "ids are stable under substitution" test_ids_stable_under_substitution;
    case "interning is exception safe (injected fault)" test_intern_exception_safety;
    case "multi-domain interning: shared pointers, unique ids"
      test_multi_domain_interning;
    case "printing" test_pp;
  ]
