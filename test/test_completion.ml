open Adt
open Helpers

let is_value spec t = Spec.is_constructor_term spec t || Term.is_error t

let test_canonical_spec_completes_unchanged () =
  let outcome, stats = Completion.complete_spec nat_spec in
  (match outcome with
  | Completion.Completed sys ->
    Alcotest.(check int) "same four rules" 4 (Rewrite.size sys);
    check_term "still computes" (church 4)
      (Rewrite.normalize sys (plus (church 2) (church 2)))
  | Completion.Failed _ -> Alcotest.fail "Nat should complete");
  Alcotest.(check bool) "did some work" true (stats.Completion.iterations >= 4)

let test_queue_completes () =
  match fst (Completion.complete_spec Adt_specs.Queue_spec.spec) with
  | Completion.Completed sys ->
    Alcotest.(check bool) "rules retained" true (Rewrite.size sys >= 6)
  | Completion.Failed _ -> Alcotest.fail "Queue should complete"

let test_joins_redundant_equation () =
  (* an equation that normalizes to triviality is dropped *)
  let redundant = Axiom.v ~name:"red" ~lhs:(plus z z) ~rhs:z () in
  let outcome, _ =
    Completion.complete
      ~precedence:(Ordering.dependency nat_spec)
      ~is_value:(is_value nat_spec)
      (Spec.axioms nat_spec @ [ redundant ])
  in
  match outcome with
  | Completion.Completed sys -> Alcotest.(check int) "four rules" 4 (Rewrite.size sys)
  | Completion.Failed _ -> Alcotest.fail "should complete"

let test_derives_missing_rule () =
  (* given plus-z on the RIGHT (n = plus(n, z) oriented the other way),
     completion must orient it into a rule *)
  let extra = Axiom.v ~name:"comm0" ~lhs:(plus (v "n") z) ~rhs:(v "n") () in
  let outcome, _ =
    Completion.complete
      ~precedence:(Ordering.dependency nat_spec)
      ~is_value:(is_value nat_spec)
      (Spec.axioms nat_spec @ [ extra ])
  in
  match outcome with
  | Completion.Completed sys ->
    check_term "right-zero law usable" (v "n")
      (Rewrite.normalize sys (plus (v "n") z))
  | Completion.Failed _ -> Alcotest.fail "should complete"

let test_detects_inconsistency () =
  let evil = Axiom.v ~name:"evil" ~lhs:(isz z) ~rhs:Term.ff () in
  let outcome, _ =
    Completion.complete
      ~precedence:(Ordering.dependency nat_spec)
      ~is_value:(is_value nat_spec)
      (Spec.axioms nat_spec @ [ evil ])
  in
  match outcome with
  | Completion.Failed (Completion.Inconsistent (a, b)) ->
    let rendered = List.sort compare [ Term.to_string a; Term.to_string b ] in
    Alcotest.(check (list string)) "true = false" [ "false"; "true" ] rendered
  | Completion.Failed other ->
    Alcotest.failf "wrong failure: %a" Completion.pp_outcome (Completion.Failed other)
  | Completion.Completed _ -> Alcotest.fail "inconsistency slipped through"

let test_unorientable_reported () =
  (* commutativity cannot be oriented by an LPO *)
  let comm = Axiom.v ~name:"comm" ~lhs:(plus (v "a") (v "b")) ~rhs:(plus (v "b") (v "a")) () in
  let outcome, _ =
    Completion.complete
      ~precedence:(Ordering.dependency nat_spec)
      ~is_value:(fun _ -> false)
      [ comm ]
  in
  match outcome with
  | Completion.Failed (Completion.Unorientable _) -> ()
  | other -> Alcotest.failf "expected Unorientable, got %a" Completion.pp_outcome other

let test_bound_respected () =
  (* an equation that loops forever under naive completion is cut off *)
  let f_op = Op.v "f" ~args:[ nat ] ~result:nat in
  let g_op = Op.v "g" ~args:[ nat ] ~result:nat in
  let f t = Term.app f_op [ t ] and g t = Term.app g_op [ t ] in
  let ax = Axiom.v ~name:"fg" ~lhs:(f (g (v "x"))) ~rhs:(g (f (v "x"))) () in
  let prec = Ordering.of_list [ "f"; "g" ] in
  let outcome, stats =
    Completion.complete ~max_rules:8 ~precedence:prec ~is_value:(fun _ -> false) [ ax ]
  in
  (match outcome with
  | Completion.Failed Completion.Bound_exceeded -> ()
  | Completion.Completed _ -> () (* acceptable if the system happens to close *)
  | Completion.Failed _ as other ->
    Alcotest.failf "unexpected: %a" Completion.pp_outcome other);
  Alcotest.(check bool) "bounded work" true (stats.Completion.rules_added <= 9)

let suite =
  [
    case "a canonical system completes to itself"
      test_canonical_spec_completes_unchanged;
    case "the Queue spec completes" test_queue_completes;
    case "redundant equations are dropped" test_joins_redundant_equation;
    case "new equations are oriented into rules" test_derives_missing_rule;
    case "inconsistent axioms are detected" test_detects_inconsistency;
    case "unorientable equations are reported" test_unorientable_reported;
    case "bounds stop divergent completions" test_bound_respected;
  ]
