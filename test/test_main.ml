let () =
  Alcotest.run "guttag-adt"
    [
      ("term", Test_term.suite);
      ("subst", Test_subst.suite);
      ("rewrite", Test_rewrite.suite);
      ("diff", Test_diff.suite);
      ("signature-axiom-spec", Test_spec.suite);
      ("enum", Test_enum.suite);
      ("completeness", Test_completeness.suite);
      ("heuristics", Test_heuristics.suite);
      ("analysis", Test_analysis.suite);
      ("ordering", Test_ordering.suite);
      ("consistency", Test_consistency.suite);
      ("completion", Test_completion.suite);
      ("parser", Test_parser.suite);
      ("library", Test_library.suite);
      ("lru", Test_lru.suite);
      ("memo", Test_memo.suite);
      ("interp", Test_interp.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      ("server", Test_server.suite);
      ("model", Test_model.suite);
      ("proof", Test_proof.suite);
      ("queue", Test_queue.suite);
      ("stack-array", Test_stack_array.suite);
      ("symboltable", Test_symboltable.suite);
      ("knowlist", Test_knowlist.suite);
      ("bounded-queue", Test_bounded_queue.suite);
      ("refinement", Test_refinement.suite);
      ("array-as-list", Test_array_as_list.suite);
      ("blocklang", Test_blocklang.suite);
      ("procedures", Test_procedures.suite);
      ("pretty", Test_pretty.suite);
      ("properties", Test_props.suite);
      ("fuzz", Test_fuzz.suite);
    ]
