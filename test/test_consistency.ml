open Adt
open Helpers
open Adt_specs

let test_paper_specs_orthogonal () =
  List.iter
    (fun (name, spec) ->
      let report = Consistency.check spec in
      Alcotest.(check bool) (name ^ " locally confluent") true
        (Consistency.locally_confluent report);
      Alcotest.(check bool) (name ^ " consistent") true
        (Consistency.is_consistent spec report))
    [
      ("Queue", Queue_spec.spec);
      ("Stack", Stack_spec.default.Stack_spec.spec);
      ("Array", Array_spec.default.Array_spec.spec);
      ("Symboltable", Symboltable_spec.spec);
      ("Knowlist", Knowlist_spec.spec);
      ("Nat", Builtins.nat_spec);
    ]

let test_queue_has_no_critical_pairs () =
  let report = Consistency.check Queue_spec.spec in
  Alcotest.(check int) "orthogonal" 0 (List.length report.Consistency.pairs);
  Alcotest.(check bool) "orientable" true report.Consistency.orientable

let test_seeded_inconsistency_detected () =
  (* add IS_EMPTY?(ADD(q,i)) = true alongside axiom 2 (which says false) *)
  let q = Term.var "q" Queue_spec.sort
  and i = Term.var "i" Builtins.item_sort in
  let contradiction =
    Axiom.v ~name:"evil"
      ~lhs:(Queue_spec.is_empty (Queue_spec.add q i))
      ~rhs:Term.tt ()
  in
  let bad = Spec.with_axioms [ contradiction ] Queue_spec.spec in
  let report = Consistency.check bad in
  Alcotest.(check bool) "pairs found" true (report.Consistency.pairs <> []);
  Alcotest.(check bool) "not locally confluent" false
    (Consistency.locally_confluent report);
  match Consistency.inconsistencies bad report with
  | (_, a, b) :: _ ->
    let rendered = List.sort compare [ Term.to_string a; Term.to_string b ] in
    Alcotest.(check (list string)) "true = false derived" [ "false"; "true" ] rendered
  | [] -> Alcotest.fail "inconsistency not detected"

let test_error_vs_value_inconsistency () =
  (* FRONT(NEW) = error and FRONT(NEW) = ITEM1 contradict *)
  let evil =
    Axiom.v ~name:"evil" ~lhs:(Queue_spec.front Queue_spec.new_)
      ~rhs:(Builtins.item 1) ()
  in
  let bad = Spec.with_axioms [ evil ] Queue_spec.spec in
  let report = Consistency.check bad in
  Alcotest.(check bool) "inconsistent" false (Consistency.is_consistent bad report)

let test_benign_overlap_is_joinable () =
  (* a redundant instance of an existing axiom overlaps but joins *)
  let redundant =
    Axiom.v ~name:"redundant"
      ~lhs:(Queue_spec.is_empty (Queue_spec.add Queue_spec.new_ (Builtins.item 1)))
      ~rhs:Term.ff ()
  in
  let spec = Spec.with_axioms [ redundant ] Queue_spec.spec in
  let report = Consistency.check spec in
  Alcotest.(check bool) "pairs exist" true (report.Consistency.pairs <> []);
  Alcotest.(check bool) "all joinable" true (Consistency.locally_confluent report);
  Alcotest.(check bool) "consistent" true (Consistency.is_consistent spec report)

let test_critical_pairs_shape () =
  (* classic overlapping system: f(f(x)) -> a with itself *)
  let f_op = Op.v "f" ~args:[ nat ] ~result:nat in
  let sg = Signature.add_op f_op base_signature in
  let f t = Term.app f_op [ t ] in
  let rule = Rewrite.rule ~name:"ff" ~lhs:(f (f (v "x"))) ~rhs:(v "x") () in
  ignore sg;
  let cps = Consistency.critical_pairs [ rule ] in
  (* overlap of the rule into itself at position [0] *)
  Alcotest.(check int) "one proper self-overlap" 1 (List.length cps);
  let cp = List.hd cps in
  Alcotest.(check (list int)) "at position 0" [ 0 ] cp.Consistency.position;
  check_term "peak" (f (f (f (v "x'")))) cp.Consistency.peak;
  (* left: whole-term contraction; right: inner contraction *)
  check_term "left" (f (v "x'")) cp.Consistency.left;
  check_term "right" (f (v "x'")) cp.Consistency.right

let test_root_overlaps_of_distinct_rules () =
  let r1 = Rewrite.rule ~name:"r1" ~lhs:(isz (v "x")) ~rhs:Term.tt () in
  let r2 = Rewrite.rule ~name:"r2" ~lhs:(isz (s (v "y"))) ~rhs:Term.ff () in
  let cps = Consistency.critical_pairs [ r1; r2 ] in
  Alcotest.(check bool) "root overlap found" true
    (List.exists (fun cp -> cp.Consistency.position = []) cps);
  (* and it diverges: true vs false *)
  let sys = Rewrite.of_rules [ r1; r2 ] in
  List.iter
    (fun cp ->
      if cp.Consistency.position = [] then begin
        let l = Rewrite.normalize sys cp.Consistency.left in
        let r = Rewrite.normalize sys cp.Consistency.right in
        Alcotest.(check bool) "diverges" false (Term.equal l r)
      end)
    cps

let test_report_rendering () =
  let text = Fmt.str "%a" Consistency.pp_report (Consistency.check Queue_spec.spec) in
  Alcotest.(check bool) "mentions orthogonal" true
    (Astring_contains.contains text "no critical pairs")

let test_ground_strategy_agreement () =
  List.iter
    (fun (name, spec, size) ->
      let u = Enum.universe spec in
      match Consistency.ground_strategy_agreement u ~size with
      | Ok n -> Alcotest.(check bool) (name ^ " checked some terms") true (n > 10)
      | Error t ->
        Alcotest.failf "%s: strategies disagree on %a" name Term.pp t)
    [
      ("Queue", Queue_spec.spec, 7);
      ("Symboltable", Symboltable_spec.spec, 5);
      ("Nat", Builtins.nat_spec, 6);
      ("Knowlist", Knowlist_spec.spec, 5);
    ]

let test_strategy_divergence_on_discarded_errors () =
  (* the documented boundary: outermost is lazy about arguments, so an
     error inside a discarded argument position survives under innermost
     (strict, as the paper's algebra demands) but vanishes under
     outermost. Enumerated ground CONSTRUCTOR arguments never contain
     errors, which is why ground_strategy_agreement holds above. *)
  let sys = Rewrite.of_spec Queue_spec.spec in
  let poisoned =
    Queue_spec.is_empty
      (Queue_spec.add Queue_spec.new_ (Queue_spec.front Queue_spec.new_))
  in
  let inner = Rewrite.normalize ~strategy:Rewrite.Innermost sys poisoned in
  let outer = Rewrite.normalize ~strategy:Rewrite.Outermost sys poisoned in
  Alcotest.(check bool) "innermost: strict error" true (Term.is_error inner);
  check_term "outermost: discards the error" Term.ff outer

let suite =
  [
    case "paper specs are orthogonal and consistent" test_paper_specs_orthogonal;
    case "queue has no critical pairs" test_queue_has_no_critical_pairs;
    case "seeded contradiction found (true = false)"
      test_seeded_inconsistency_detected;
    case "error vs value contradiction found" test_error_vs_value_inconsistency;
    case "benign overlaps join" test_benign_overlap_is_joinable;
    case "critical-pair construction (self-overlap)" test_critical_pairs_shape;
    case "root overlaps of distinct rules" test_root_overlaps_of_distinct_rules;
    case "report rendering" test_report_rendering;
  ]
  @ [
      case "strategies agree on the ground universe"
        test_ground_strategy_agreement;
      case "strict vs lazy error boundary (documented)"
        test_strategy_divergence_on_discarded_errors;
    ]
