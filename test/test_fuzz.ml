(* Differential fuzzing of the block-language pipeline: generate random
   well-formed programs (declarations before use, type-correct expressions,
   bounded loops), then check that

   - the checker accepts them on every backend,
   - the stack-VM execution of the compiled code equals the tree-walking
     interpreter,
   - the direct and algebraic backends produce the same resolved behaviour.

   Programs are built deterministically from an integer seed so failures
   reproduce. *)

open Blocklang
open Helpers

type genv = {
  st : Random.State.t;
  mutable fresh : int;
  mutable scopes : (string * Ast.typ) list list;
  mutable procs : (string * Ast.typ list * Ast.typ) list;
      (** procedures already declared (callable from here on) *)
}

let fresh_name g prefix =
  g.fresh <- g.fresh + 1;
  Fmt.str "%s%d" prefix g.fresh

(* names as the checker resolves them: innermost binding wins, so an
   identifier shadowed at a different type is only visible at the inner
   type *)
let visible g ty =
  let rec resolve seen = function
    | [] -> []
    | scope :: rest ->
      let fresh = List.filter (fun (x, _) -> not (List.mem x seen)) scope in
      fresh @ resolve (List.map fst fresh @ seen) rest
  in
  resolve [] g.scopes
  |> List.filter (fun (_, t) -> t = ty)
  |> List.map fst

let pick g = function
  | [] -> None
  | xs -> Some (List.nth xs (Random.State.int g.st (List.length xs)))

let e desc = { Ast.desc; eline = 0 }
let s sdesc = { Ast.sdesc; sline = 0 }

let rec gen_expr g ty depth : Ast.expr =
  let leaf () =
    match (ty, pick g (visible g ty)) with
    | _, Some x when Random.State.bool g.st -> e (Ast.Var x)
    | Ast.Tint, _ -> e (Ast.Int (Random.State.int g.st 100))
    | Ast.Tbool, _ -> e (Ast.Bool (Random.State.bool g.st))
  in
  let callable = List.filter (fun (_, _, ret) -> ret = ty) g.procs in
  if depth = 0 then leaf ()
  else if callable <> [] && Random.State.int g.st 5 = 0 then begin
    match pick g callable with
    | Some (f, params, _) ->
      e (Ast.Call (f, List.map (fun pty -> gen_expr g pty (depth - 1)) params))
    | None -> leaf ()
  end
  else
    match ty with
    | Ast.Tint -> (
      match Random.State.int g.st 4 with
      | 0 -> leaf ()
      | 1 -> e (Ast.Binop (Ast.Add, gen_expr g Ast.Tint (depth - 1), gen_expr g Ast.Tint (depth - 1)))
      | 2 -> e (Ast.Binop (Ast.Sub, gen_expr g Ast.Tint (depth - 1), gen_expr g Ast.Tint (depth - 1)))
      | _ -> e (Ast.Binop (Ast.Mul, gen_expr g Ast.Tint (depth - 1), gen_expr g Ast.Tint (depth - 1))))
    | Ast.Tbool -> (
      match Random.State.int g.st 5 with
      | 0 -> leaf ()
      | 1 -> e (Ast.Binop (Ast.Lt, gen_expr g Ast.Tint (depth - 1), gen_expr g Ast.Tint (depth - 1)))
      | 2 -> e (Ast.Binop (Ast.Eq, gen_expr g Ast.Tint (depth - 1), gen_expr g Ast.Tint (depth - 1)))
      | 3 -> e (Ast.Binop (Ast.And, gen_expr g Ast.Tbool (depth - 1), gen_expr g Ast.Tbool (depth - 1)))
      | _ -> e (Ast.Not (gen_expr g Ast.Tbool (depth - 1))))

let gen_decl g =
  let ty = if Random.State.bool g.st then Ast.Tint else Ast.Tbool in
  let name =
    (* occasionally shadow an identifier from an enclosing scope — but
       never a loop counter ("c..."), whose shadowing would break the
       generated loop's termination argument *)
    match g.scopes with
    | _ :: outer :: _ when Random.State.int g.st 4 = 0 -> (
      let candidates =
        List.filter (fun x -> String.length x > 0 && x.[0] = 'v')
          (List.map fst outer)
      in
      match pick g candidates with
      | Some x when not (List.mem_assoc x (List.hd g.scopes)) -> x
      | _ -> fresh_name g "v")
    | _ -> fresh_name g "v"
  in
  g.scopes <- ((name, ty) :: List.hd g.scopes) :: List.tl g.scopes;
  s (Ast.Decl (name, ty))

let rec gen_stmt g depth : Ast.stmt option =
  match Random.State.int g.st 8 with
  | 0 | 1 -> Some (gen_decl g)
  | 2 | 3 -> (
    let ty = if Random.State.bool g.st then Ast.Tint else Ast.Tbool in
    match pick g (visible g ty) with
    | Some x -> Some (s (Ast.Assign (x, gen_expr g ty 2)))
    | None -> Some (gen_decl g))
  | 4 ->
    let ty = if Random.State.bool g.st then Ast.Tint else Ast.Tbool in
    Some (s (Ast.Print (gen_expr g ty 2)))
  | 5 when depth > 0 -> Some (s (Ast.Block (gen_block g (depth - 1) 3)))
  | 6 when depth > 0 ->
    let c = gen_expr g Ast.Tbool 2 in
    let th = gen_block g (depth - 1) 2 in
    let el =
      if Random.State.bool g.st then Some (gen_block g (depth - 1) 2) else None
    in
    Some (s (Ast.If (c, th, el)))
  | 7 when depth > 0 ->
    (* a guaranteed-terminating loop: a wrapper block declares a fresh
       counter, the loop body ends by incrementing it. The counter is kept
       OUT of the generator's scope tracking so no generated statement can
       assign to (or shadow) it and break termination. *)
    let counter = fresh_name g "c" in
    let body = gen_block g (depth - 1) 2 in
    let increment =
      s (Ast.Assign (counter, e (Ast.Binop (Ast.Add, e (Ast.Var counter), e (Ast.Int 1)))))
    in
    let body = { body with Ast.stmts = body.Ast.stmts @ [ increment ] } in
    Some
      (s
         (Ast.Block
            {
              Ast.knows = None;
              stmts =
                [
                  s (Ast.Decl (counter, Ast.Tint));
                  s (Ast.Assign (counter, e (Ast.Int 0)));
                  s (Ast.While (e (Ast.Binop (Ast.Lt, e (Ast.Var counter), e (Ast.Int 3))), body));
                ];
            }))
  | _ -> None

and gen_block g depth budget : Ast.block =
  g.scopes <- [] :: g.scopes;
  let stmts =
    List.filter_map (fun _ -> gen_stmt g depth) (List.init budget Fun.id)
  in
  g.scopes <- List.tl g.scopes;
  { Ast.knows = None; stmts }

(* a random procedure: parameters only in scope, body computes over them
   (and may call previously generated procedures) and returns *)
let gen_proc g =
  let name = fresh_name g "p" in
  let n_params = Random.State.int g.st 3 in
  let params =
    List.init n_params (fun _ ->
        ( fresh_name g "a",
          if Random.State.bool g.st then Ast.Tint else Ast.Tbool ))
  in
  let ret = if Random.State.bool g.st then Ast.Tint else Ast.Tbool in
  (* the body sees only its parameters: generated procedures are pure *)
  let saved = g.scopes in
  g.scopes <- [ params ];
  let body_stmts =
    [ s (Ast.Return (gen_expr g ret 3)) ]
  in
  g.scopes <- saved;
  g.procs <- g.procs @ [ (name, List.map snd params, ret) ];
  s (Ast.Proc (name, params, ret, { Ast.knows = None; stmts = body_stmts }))

let build_program seed : Ast.program =
  let g =
    { st = Random.State.make [| seed |]; fresh = 0; scopes = []; procs = [] }
  in
  g.scopes <- [ [] ];
  let procs = List.init (Random.State.int g.st 3) (fun _ -> gen_proc g) in
  g.scopes <- [];
  let body = gen_block g 3 6 in
  { body with Ast.stmts = procs @ body.Ast.stmts }

(* the generated loop wraps the counter decl in a block whose scope the
   builder does not track; that is fine because the counter name is fresh *)

let prop_checker_accepts =
  qcheck ~count:150 "generated programs are well formed" QCheck2.Gen.int
    (fun seed ->
      match Checker.Direct.check (build_program seed) with
      | Ok _ -> true
      | Error diags ->
        QCheck2.Test.fail_reportf "rejected: %a"
          Fmt.(list ~sep:semi Checker.pp_diagnostic)
          diags)

let prop_vm_matches_eval =
  qcheck ~count:150 "vm = tree-walker on generated programs" QCheck2.Gen.int
    (fun seed ->
      match Checker.Direct.check (build_program seed) with
      | Error _ -> true
      | Ok rp -> Vm.run (Codegen.compile rp) = Eval.run rp)

let prop_backends_agree =
  qcheck ~count:40 "backends agree on generated programs" QCheck2.Gen.int
    (fun seed ->
      let program = build_program seed in
      let outcome backend =
        match backend with
        | `Direct -> Checker.Direct.check program
        | `Algebraic -> Checker.Algebraic.check program
      in
      match (outcome `Direct, outcome `Algebraic) with
      | Ok a, Ok b ->
        (* identical resolution implies identical behaviour *)
        Eval.run a = Eval.run b
      | Error _, Error _ -> true
      | _ -> false)

let prop_printed_program_reparses =
  qcheck ~count:100 "generated programs re-parse after printing"
    QCheck2.Gen.int (fun seed ->
      let program = build_program seed in
      let printed = Fmt.str "%a" Ast.pp_program program in
      match Parser.parse printed with
      | Ok program' ->
        Ast.identifiers program = Ast.identifiers program'
        && Ast.block_count program = Ast.block_count program'
      | Error e ->
        QCheck2.Test.fail_reportf "no reparse: %a@.%s" Parser.pp_error e
          printed)

let suite =
  [
    prop_checker_accepts;
    prop_vm_matches_eval;
    prop_backends_agree;
    prop_printed_program_reparses;
  ]
