open Adt
open Helpers
open Adt_specs

let queue_universe = Enum.universe Queue_spec.spec

let test_queue_impl_is_a_model () =
  match Model.check queue_universe Queue_impl.model ~size:5 with
  | Ok verified -> Alcotest.(check bool) "many instances" true (verified > 50)
  | Error cex -> Alcotest.failf "%a" Model.pp_counterexample cex

let test_eval_in_model () =
  let t = Queue_spec.front (Queue_spec.of_items [ Builtins.item 1; Builtins.item 2 ]) in
  (match Model.eval Queue_spec.spec Queue_impl.model t with
  | Ok (Model.Foreign item) -> check_term "front" (Builtins.item 1) item
  | Ok (Model.Rep _) -> Alcotest.fail "front is not a queue"
  | Error _ -> Alcotest.fail "errored");
  match Model.eval Queue_spec.spec Queue_impl.model (Queue_spec.front Queue_spec.new_) with
  | Error s -> Alcotest.check sort_testable "error sort" Builtins.item_sort s
  | Ok _ -> Alcotest.fail "FRONT(NEW) should be an error"

let test_ite_in_model () =
  let q = Queue_spec.of_items [ Builtins.item 1 ] in
  let t = Term.ite (Queue_spec.is_empty q) (Builtins.item 2) (Queue_spec.front q) in
  match Model.eval Queue_spec.spec Queue_impl.model t with
  | Ok (Model.Foreign r) -> check_term "else branch" (Builtins.item 1) r
  | _ -> Alcotest.fail "unexpected"

let test_to_term_phi () =
  let t = Queue_spec.remove (Queue_spec.of_items [ Builtins.item 1; Builtins.item 2 ]) in
  let denoted = Model.to_term Queue_spec.spec Queue_impl.model
      (Model.eval Queue_spec.spec Queue_impl.model t)
  in
  check_term "Phi of remove" (Queue_spec.of_items [ Builtins.item 2 ]) denoted

let test_faulty_impl_caught () =
  (* a LIFO "queue": FRONT returns the most recent item *)
  let faulty =
    {
      Model.model_name = "lifo";
      interp =
        (fun name args ->
          match (name, args) with
          | "NEW", [] -> Some (Model.Rep [])
          | "ADD", [ Model.Rep q; Model.Foreign i ] -> Some (Model.Rep (i :: q))
          | "FRONT", [ Model.Rep q ] -> (
            match q with
            | i :: _ -> Some (Model.Foreign i)
            | [] -> raise (Model.Impl_error "empty"))
          | "REMOVE", [ Model.Rep q ] -> (
            match q with
            | _ :: rest -> Some (Model.Rep rest)
            | [] -> raise (Model.Impl_error "empty"))
          | "IS_EMPTY?", [ Model.Rep q ] ->
            Some (Model.Foreign (if q = [] then Term.tt else Term.ff))
          | _ -> None);
      abstraction = (fun q -> Queue_spec.of_items (List.rev q));
    }
  in
  match Model.check queue_universe faulty ~size:5 with
  | Error cex ->
    (* the offending axiom must be FRONT's or REMOVE's inductive case *)
    Alcotest.(check bool) "axiom 4 or 6" true
      (List.mem (Axiom.name cex.Model.axiom) [ "4"; "6" ])
  | Ok _ -> Alcotest.fail "LIFO accepted as a FIFO model"

let test_missing_error_caught () =
  (* an implementation that silently returns a default instead of error *)
  let sloppy =
    {
      Queue_impl.model with
      Model.interp =
        (fun name args ->
          match (name, args) with
          | "FRONT", [ Model.Rep q ] when Queue_impl.is_empty q ->
            Some (Model.Foreign (Builtins.item 1))
          | _ -> Queue_impl.model.Model.interp name args);
    }
  in
  match Model.check queue_universe sloppy ~size:5 with
  | Error cex -> Alcotest.(check string) "axiom 3" "3" (Axiom.name cex.Model.axiom)
  | Ok _ -> Alcotest.fail "missing error behaviour accepted"

let test_check_random () =
  let state = Random.State.make [| 11 |] in
  match Model.check_random queue_universe Queue_impl.model ~count:300 ~size:9 state with
  | Ok n -> Alcotest.(check bool) "ran" true (n > 0)
  | Error cex -> Alcotest.failf "%a" Model.pp_counterexample cex

let test_check_axiom_single () =
  let ax = Option.get (Spec.find_axiom "4" Queue_spec.spec) in
  Alcotest.(check bool) "axiom 4 holds" true
    (Model.check_axiom queue_universe Queue_impl.model ~size:5 ax = None)

let suite =
  [
    case "the two-list queue models the Queue axioms" test_queue_impl_is_a_model;
    case "evaluation in a model" test_eval_in_model;
    case "if-then-else in a model" test_ite_in_model;
    case "denotation through Phi" test_to_term_phi;
    case "a LIFO impostor is rejected" test_faulty_impl_caught;
    case "missing error behaviour is rejected" test_missing_error_caught;
    case "randomised checking" test_check_random;
    case "single-axiom checking" test_check_axiom_single;
  ]
