open Adt
open Helpers
open Adt_specs

let interp = Interp.create Bounded_queue_spec.spec
let item = Builtins.item

let test_spec_checks () =
  Alcotest.(check bool) "complete" true
    (Completeness.is_complete (Completeness.check Bounded_queue_spec.spec));
  let report = Consistency.check Bounded_queue_spec.spec in
  Alcotest.(check bool) "consistent" true
    (Consistency.is_consistent Bounded_queue_spec.spec report)

let test_size_and_fullness () =
  let q3 = Bounded_queue_spec.of_items [ item 1; item 2; item 3 ] in
  (match Interp.eval interp (Bounded_queue_spec.size_q q3) with
  | Interp.Value n ->
    Alcotest.(check (option int)) "size 3" (Some 3) (Builtins.int_of_nat n)
  | other -> Alcotest.failf "size: %a" Interp.pp_value other);
  Alcotest.(check (option bool)) "full at 3" (Some true)
    (Interp.eval_bool interp (Bounded_queue_spec.is_full q3));
  Alcotest.(check (option bool)) "not full at 2" (Some false)
    (Interp.eval_bool interp
       (Bounded_queue_spec.is_full (Bounded_queue_spec.of_items [ item 1; item 2 ])))

(* {2 The ring buffer} *)

let test_ring_fifo () =
  let q = Bounded_queue_impl.(add (add empty (item 1)) (item 2)) in
  check_term "front" (item 1) (Bounded_queue_impl.front q);
  let q = Bounded_queue_impl.remove q in
  check_term "second" (item 2) (Bounded_queue_impl.front q);
  Alcotest.(check int) "size" 1 (Bounded_queue_impl.size q)

let test_ring_wraps () =
  (* fill, drain, refill: the head pointer wraps around the buffer *)
  let q = Bounded_queue_impl.(empty |> Fun.flip add (item 1) |> Fun.flip add (item 2) |> Fun.flip add (item 3)) in
  let q = Bounded_queue_impl.(remove (remove q)) in
  let q = Bounded_queue_impl.(add (add q (item 4)) (item 1)) in
  Alcotest.(check int) "full again" 3 (Bounded_queue_impl.size q);
  check_term "order preserved" (item 3) (Bounded_queue_impl.front q);
  check_term "Phi sees through the wrap"
    (Bounded_queue_spec.of_items [ item 3; item 4; item 1 ])
    (Bounded_queue_impl.abstraction q)

let test_overflow_and_underflow () =
  let full = Bounded_queue_impl.(empty |> Fun.flip add (item 1) |> Fun.flip add (item 2) |> Fun.flip add (item 3)) in
  (match Bounded_queue_impl.add full (item 4) with
  | exception Bounded_queue_impl.Error -> ()
  | _ -> Alcotest.fail "overflow accepted");
  (match Bounded_queue_impl.front Bounded_queue_impl.empty with
  | exception Bounded_queue_impl.Error -> ()
  | _ -> Alcotest.fail "front of empty");
  match Bounded_queue_impl.remove Bounded_queue_impl.empty with
  | exception Bounded_queue_impl.Error -> ()
  | _ -> Alcotest.fail "remove of empty"

let test_paper_figures () =
  (* the two program segments of section 4 *)
  let x1 =
    Bounded_queue_impl.(
      empty |> Fun.flip add (item 1) |> Fun.flip add (item 2)
      |> Fun.flip add (item 3) |> remove |> Fun.flip add (item 4))
  in
  let x2 =
    Bounded_queue_impl.(
      empty |> Fun.flip add (item 2) |> Fun.flip add (item 3)
      |> Fun.flip add (item 4))
  in
  Alcotest.(check bool) "distinct internal states" false
    (Bounded_queue_impl.state_equal x1 x2);
  Alcotest.(check int) "heads differ" 1 (Bounded_queue_impl.head x1);
  Alcotest.(check int) "heads differ (2)" 0 (Bounded_queue_impl.head x2);
  check_term "same abstract value"
    (Bounded_queue_impl.abstraction x1)
    (Bounded_queue_impl.abstraction x2);
  (* and that value is the paper's B, C, D queue *)
  check_term "B C D"
    (Bounded_queue_spec.of_items [ item 2; item 3; item 4 ])
    (Bounded_queue_impl.abstraction x1)

let test_phi_many_to_one_systematically () =
  (* every pair of distinct states reached by <= 6 operations that Phi
     identifies must be observationally equivalent (front/size agree) *)
  let rec states q ops acc =
    if ops = 0 then q :: acc
    else
      let acc = q :: acc in
      let acc =
        match Bounded_queue_impl.add q (item ((ops mod 4) + 1)) with
        | q' -> states q' (ops - 1) acc
        | exception Bounded_queue_impl.Error -> acc
      in
      match Bounded_queue_impl.remove q with
      | q' -> states q' (ops - 1) acc
      | exception Bounded_queue_impl.Error -> acc
  in
  let all = states Bounded_queue_impl.empty 6 [] in
  let pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) all) all in
  let collisions = ref 0 in
  List.iter
    (fun (a, b) ->
      if
        (not (Bounded_queue_impl.state_equal a b))
        && Term.equal
             (Bounded_queue_impl.abstraction a)
             (Bounded_queue_impl.abstraction b)
      then begin
        incr collisions;
        Alcotest.(check int) "sizes agree" (Bounded_queue_impl.size a)
          (Bounded_queue_impl.size b);
        if not (Bounded_queue_impl.is_empty a) then
          check_term "fronts agree"
            (Bounded_queue_impl.front a)
            (Bounded_queue_impl.front b)
      end)
    pairs;
  Alcotest.(check bool) "Phi is genuinely many-to-one" true (!collisions > 0)

let test_model_within_bound () =
  (* the representation is correct for clients that respect the bound:
     queue variables range over at most 2 elements so that the axioms'
     own ADD_Q stays within the 3-slot buffer *)
  let u = Enum.universe Bounded_queue_spec.spec in
  match Model.check u Bounded_queue_impl.model ~size:5 with
  | Ok n -> Alcotest.(check bool) "ran" true (n > 50)
  | Error cex -> Alcotest.failf "%a" Model.pp_counterexample cex

let test_conditional_correctness_boundary () =
  (* beyond the bound the model diverges from the (unbounded) abstract
     axioms: ADD_Q on a full queue is an implementation error while the
     axioms happily build a 4-element queue — the exact shape of the
     paper's "conditional correctness" *)
  let ax2 = Option.get (Spec.find_axiom "b2" Bounded_queue_spec.spec) in
  let u = Enum.universe Bounded_queue_spec.spec in
  match Model.check_axiom u Bounded_queue_impl.model ~size:9 ax2 with
  | Some cex ->
    Alcotest.(check string) "axiom b2 at the boundary" "b2"
      (Axiom.name cex.Model.axiom)
  | None -> Alcotest.fail "expected a boundary counterexample beyond the bound"

let suite =
  [
    case "specification is complete and consistent" test_spec_checks;
    case "SIZE_Q and IS_FULL?" test_size_and_fullness;
    case "ring buffer: FIFO" test_ring_fifo;
    case "ring buffer: wrap-around" test_ring_wraps;
    case "ring buffer: overflow and underflow" test_overflow_and_underflow;
    case "the paper's two figures reproduced" test_paper_figures;
    case "Phi is many-to-one, collisions are equivalent"
      test_phi_many_to_one_systematically;
    case "model of the axioms within the bound" test_model_within_bound;
    case "conditional correctness: violated beyond the bound"
      test_conditional_correctness_boundary;
  ]
