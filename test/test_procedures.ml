open Blocklang
open Helpers

let run_direct src =
  match Driver.run_source Driver.Direct src with
  | Driver.Ran values -> values
  | other -> Alcotest.failf "did not run: %a" Driver.pp_outcome other

let diags_of backend src =
  match Driver.check_source backend src with
  | Driver.Check_errors ds -> List.map (fun d -> d.Checker.kind) ds
  | Driver.Ran _ -> []
  | Driver.Parse_error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Driver.Runtime_error msg -> Alcotest.failf "runtime error: %s" msg

let values = Alcotest.(list (testable Vm.pp_value ( = )))

(* {2 Attribute encoding} *)

let test_proc_attrs_roundtrip () =
  List.iter
    (fun (ret, params, index) ->
      let t = Adt_specs.Attributes.mk_proc ~ret ~params ~index in
      Alcotest.(check (option (triple int (list int) int)))
        "decode inverts mk_proc"
        (Some (ret, params, index))
        (Adt_specs.Attributes.decode_proc t);
      (* proc attributes never decode as variable attributes *)
      Alcotest.(check bool) "kinds are distinct" true
        (Adt_specs.Attributes.decode t = None))
    [
      (0, [], 0);
      (1, [ 0 ], 3);
      (0, [ 0; 1; 0 ], 12);
      (1, [ 1; 1; 1; 1 ], 7);
      (0, [ 1; 0 ], 0);
    ]

let test_proc_attrs_algebraic_equality () =
  let open Adt in
  let interp = Interp.create Adt_specs.Attributes.spec in
  let a = Adt_specs.Attributes.mk_proc ~ret:0 ~params:[ 0; 1 ] ~index:2 in
  let b = Adt_specs.Attributes.mk_proc ~ret:0 ~params:[ 0; 1 ] ~index:2 in
  let c = Adt_specs.Attributes.mk_proc ~ret:0 ~params:[ 1; 0 ] ~index:2 in
  Alcotest.(check (option bool)) "equal attrs" (Some true)
    (Interp.eval_bool interp (Adt_specs.Attributes.eq a b));
  Alcotest.(check (option bool)) "different params" (Some false)
    (Interp.eval_bool interp (Adt_specs.Attributes.eq a c));
  Alcotest.(check (option bool)) "proc vs variable" (Some false)
    (Interp.eval_bool interp
       (Adt_specs.Attributes.eq a (Adt_specs.Attributes.mk ~ty:0 ~slot:2)))

(* {2 Parsing} *)

let test_parse_proc () =
  let p =
    Parser.parse_exn
      "begin proc f(a : int, b : bool) : int begin return a end; decl x : int; x := f(1, true) end"
  in
  match (List.hd p.Ast.stmts).Ast.sdesc with
  | Ast.Proc ("f", [ ("a", Ast.Tint); ("b", Ast.Tbool) ], Ast.Tint, _) -> ()
  | _ -> Alcotest.fail "procedure shape lost"

let test_parse_empty_params () =
  let p = Parser.parse_exn "begin proc f() : int begin return 1 end end" in
  match (List.hd p.Ast.stmts).Ast.sdesc with
  | Ast.Proc ("f", [], Ast.Tint, _) -> ()
  | _ -> Alcotest.fail "empty parameter list lost"

let test_parse_call_precedence () =
  let p = Parser.parse_exn "begin decl x : int; x := 1 + f(2) * 3 end" in
  match (List.nth p.Ast.stmts 1).Ast.sdesc with
  | Ast.Assign
      ( "x",
        {
          desc =
            Ast.Binop
              ( Ast.Add,
                _,
                { desc = Ast.Binop (Ast.Mul, { desc = Ast.Call ("f", [ _ ]); _ }, _); _ }
              );
          _;
        } ) ->
    ()
  | _ -> Alcotest.fail "call precedence wrong"

(* {2 Checking} *)

let test_call_arity_checked () =
  match
    diags_of Driver.Direct
      "begin proc f(a : int) : int begin return a end; decl x : int; x := f(1, 2) end"
  with
  | [ Checker.Type_mismatch ] -> ()
  | _ -> Alcotest.fail "arity violation missed"

let test_call_arg_types_checked () =
  match
    diags_of Driver.Direct
      "begin proc f(a : bool) : int begin return 1 end; decl x : int; x := f(3) end"
  with
  | [ Checker.Type_mismatch ] -> ()
  | _ -> Alcotest.fail "argument type violation missed"

let test_return_type_checked () =
  match
    diags_of Driver.Direct
      "begin proc f(a : int) : int begin return a < 2 end end"
  with
  | [ Checker.Type_mismatch ] -> ()
  | _ -> Alcotest.fail "return type violation missed"

let test_misplaced_return () =
  match diags_of Driver.Direct "begin return 1 end" with
  | [ Checker.Misplaced_return ] -> ()
  | _ -> Alcotest.fail "toplevel return accepted"

let test_variable_call_rejected () =
  match
    diags_of Driver.Direct "begin decl x : int; decl y : int; y := x(1) end"
  with
  | [ Checker.Not_a_procedure ] -> ()
  | _ -> Alcotest.fail "calling a variable accepted"

let test_proc_as_variable_rejected () =
  match
    diags_of Driver.Direct
      "begin proc f() : int begin return 1 end; decl x : int; x := f end"
  with
  | [ Checker.Type_mismatch ] -> ()
  | _ -> Alcotest.fail "using a procedure as a variable accepted"

let test_recursion_rejected () =
  (* the name enters scope only after the body *)
  match
    diags_of Driver.Direct
      "begin proc f(a : int) : int begin return f(a - 1) end end"
  with
  | [ Checker.Undeclared_identifier ] -> ()
  | _ -> Alcotest.fail "direct recursion accepted"

let test_duplicate_proc_rejected () =
  match
    diags_of Driver.Direct
      "begin proc f() : int begin return 1 end; proc f() : int begin return 2 end end"
  with
  | [ Checker.Duplicate_declaration ] -> ()
  | _ -> Alcotest.fail "duplicate procedure accepted"

let test_params_do_not_escape () =
  match
    diags_of Driver.Direct
      "begin proc f(a : int) : int begin return a end; decl x : int; x := a end"
  with
  | [ Checker.Undeclared_identifier ] -> ()
  | _ -> Alcotest.fail "parameter escaped its procedure"

let test_proc_sees_enclosing_scope () =
  Alcotest.check values "reads a global"
    [ Vm.Vint 42 ]
    (run_direct
       "begin decl g : int; g := 40; proc f(a : int) : int begin return g + a end; print f(2) end")

let test_proc_writes_global () =
  Alcotest.check values "writes a global"
    [ Vm.Vint 0; Vm.Vint 7 ]
    (run_direct
       {|begin
           decl g : int;
           proc set(v : int) : int begin g := v; return v end;
           decl sink : int;
           print g;
           sink := set(7);
           print g
         end|})

(* {2 Execution} *)

let test_call_results () =
  Alcotest.check values "nested calls"
    [ Vm.Vint 55; Vm.Vbool false; Vm.Vint 16 ]
    (run_direct
       {|begin
           decl total : int;
           proc square(a : int) : int begin return a * a end;
           proc sum_squares(n : int) : int begin
             decl i : int; decl acc : int;
             i := 1;
             while not (n < i) do begin
               acc := acc + square(i);
               i := i + 1
             end;
             return acc
           end;
           proc is_big(x : int) : bool begin return 100 < x end;
           total := sum_squares(5);
           print total;
           print is_big(total);
           print square(square(2))
         end|})

let test_fall_off_end_default () =
  Alcotest.check values "default return values"
    [ Vm.Vint 0; Vm.Vbool false ]
    (run_direct
       {|begin
           proc nothing() : int begin decl t : int; t := 9 end;
           proc nope() : bool begin decl t : int; t := 9 end;
           print nothing();
           print nope()
         end|})

let test_early_return () =
  Alcotest.check values "return exits the body"
    [ Vm.Vint 1 ]
    (run_direct
       {|begin
           proc f(a : int) : int begin
             if a < 10 then begin return 1 end;
             return 2
           end;
           print f(3)
         end|})

let test_return_inside_loop () =
  Alcotest.check values "return exits a running loop"
    [ Vm.Vint 5 ]
    (run_direct
       {|begin
           proc first_ge(n : int) : int begin
             decl i : int;
             i := 0;
             while i < 100 do begin
               if n < i + 1 then begin return i end;
               i := i + 1
             end;
             return 0 - 1
           end;
           print first_ge(5)
         end|})

let procedure_programs =
  [
    "begin proc f() : int begin return 3 end; print f() end";
    "begin decl g : int; g := 1; proc f(a : int) : int begin return a + g end; print f(1); g := 5; print f(1) end";
    {|begin
        proc square(a : int) : int begin return a * a end;
        proc quad(a : int) : int begin return square(a) * square(a) end;
        print quad(2)
      end|};
    "begin proc p(a : bool, b : int) : bool begin if a then begin return b < 3 end; return false end; print p(true, 2); print p(false, 2) end";
  ]

let test_vm_eval_differential () =
  List.iter
    (fun src ->
      match Checker.Direct.check (Parser.parse_exn src) with
      | Error ds ->
        Alcotest.failf "rejected %s: %a" src
          Fmt.(list ~sep:semi Checker.pp_diagnostic)
          ds
      | Ok rp ->
        Alcotest.check values ("agree on " ^ src) (Eval.run rp)
          (Vm.run (Codegen.compile rp)))
    procedure_programs

let test_backends_agree_on_procedures () =
  List.iter
    (fun src ->
      let reference =
        Fmt.str "%a" Driver.pp_outcome (Driver.run_source Driver.Direct src)
      in
      List.iter
        (fun backend ->
          Alcotest.(check string)
            (Driver.backend_name backend)
            reference
            (Fmt.str "%a" Driver.pp_outcome (Driver.run_source backend src)))
        [ Driver.Algebraic; Driver.Algebraic_knows ])
    procedure_programs

let test_pp_round_trip () =
  List.iter
    (fun src ->
      let p = Parser.parse_exn src in
      let printed = Fmt.str "%a" Ast.pp_program p in
      match Parser.parse printed with
      | Ok p' ->
        Alcotest.(check (list string)) "identifiers" (Ast.identifiers p)
          (Ast.identifiers p')
      | Error e -> Alcotest.failf "no reparse: %a@.%s" Parser.pp_error e printed)
    procedure_programs

let suite =
  [
    case "proc attributes encode and decode" test_proc_attrs_roundtrip;
    case "proc attributes compare algebraically" test_proc_attrs_algebraic_equality;
    case "parsing: procedure declarations" test_parse_proc;
    case "parsing: empty parameter lists" test_parse_empty_params;
    case "parsing: calls inside expressions" test_parse_call_precedence;
    case "checker: call arity" test_call_arity_checked;
    case "checker: argument types" test_call_arg_types_checked;
    case "checker: return type" test_return_type_checked;
    case "checker: misplaced return" test_misplaced_return;
    case "checker: calling a variable" test_variable_call_rejected;
    case "checker: procedure as a variable" test_proc_as_variable_rejected;
    case "checker: recursion is rejected" test_recursion_rejected;
    case "checker: duplicate procedures" test_duplicate_proc_rejected;
    case "checker: parameters stay local" test_params_do_not_escape;
    case "scoping: bodies read enclosing scopes" test_proc_sees_enclosing_scope;
    case "scoping: bodies write enclosing scopes" test_proc_writes_global;
    case "execution: calls, loops, nesting" test_call_results;
    case "execution: default return values" test_fall_off_end_default;
    case "execution: early return" test_early_return;
    case "execution: return inside a loop" test_return_inside_loop;
    case "vm and tree-walker agree" test_vm_eval_differential;
    case "all backends agree" test_backends_agree_on_procedures;
    case "pretty-printing round trips" test_pp_round_trip;
  ]
