open Adt
open Helpers
open Adt_specs

let test_no_prompts_when_complete () =
  Alcotest.(check int) "queue" 0 (List.length (Heuristics.prompts Queue_spec.spec));
  Alcotest.(check int) "symboltable" 0
    (List.length (Heuristics.prompts Symboltable_spec.spec))

let test_boundary_classified_and_first () =
  let broken =
    Spec.without_axiom "3" (Spec.without_axiom "6" Queue_spec.spec)
  in
  match Heuristics.prompts broken with
  | [ first; second ] ->
    Alcotest.(check bool) "boundary first" true
      (first.Heuristics.kind = Heuristics.Boundary);
    Alcotest.(check string) "FRONT(NEW)" "FRONT(NEW)"
      (Term.to_string first.Heuristics.missing_lhs);
    Alcotest.(check bool) "general second" true
      (second.Heuristics.kind = Heuristics.General)
  | other -> Alcotest.failf "expected 2 prompts, got %d" (List.length other)

let test_question_text () =
  let broken = Spec.without_axiom "5" Queue_spec.spec in
  match Heuristics.prompts broken with
  | [ p ] ->
    Alcotest.(check bool) "asks for the case" true
      (Astring_contains.contains p.Heuristics.question "REMOVE(NEW)");
    Alcotest.(check bool) "flags boundary" true
      (Astring_contains.contains p.Heuristics.question "boundary")
  | _ -> Alcotest.fail "expected exactly one prompt"

let test_forced_rhs_suggestion () =
  (* result sort with a single constant constructor: the suggestion is
     forced *)
  let unit_sort = Sort.v "U" in
  let sg =
    List.fold_left
      (fun sg op -> Signature.add_op op sg)
      (Signature.add_sort unit_sort (Signature.add_sort nat Signature.empty))
      [
        zero_op;
        succ_op;
        Op.v "unit" ~args:[] ~result:unit_sort;
        Op.v "observe" ~args:[ nat ] ~result:unit_sort;
      ]
  in
  let spec =
    Spec.v ~name:"U" ~signature:sg ~constructors:[ "z"; "s"; "unit" ] ~axioms:[] ()
  in
  match Heuristics.prompts spec with
  | prompts ->
    Alcotest.(check bool) "has prompts" true (prompts <> []);
    List.iter
      (fun p ->
        match p.Heuristics.suggested_rhs with
        | Some t -> Alcotest.(check string) "suggests unit" "unit" (Term.to_string t)
        | None -> Alcotest.fail "expected a forced suggestion")
      prompts

let test_stub_axioms_complete_the_spec () =
  let broken =
    Spec.without_axiom "3" (Spec.without_axiom "5" Queue_spec.spec)
  in
  let stubs = Heuristics.stub_axioms broken in
  Alcotest.(check int) "one stub per hole" 2 (List.length stubs);
  let repaired = Heuristics.complete_with_stubs broken in
  Alcotest.(check bool) "now complete" true
    (Completeness.is_complete (Completeness.check repaired));
  (* the stubs say error, which is what the paper's axioms say here *)
  let interp = Interp.create repaired in
  let front_new = parse_term_exn repaired "FRONT(NEW)" in
  Alcotest.(check bool) "stub behaves like the original axiom" true
    (match Interp.eval interp front_new with
    | Interp.Error_value _ -> true
    | _ -> false)

let test_skeletons_for_fresh_op () =
  (* an operation with no axioms yet: skeletons propose one split of the
     first constructor-bearing argument *)
  let even_op = Op.v "even" ~args:[ nat ] ~result:Sort.bool in
  let sg = Signature.add_op even_op base_signature in
  let spec =
    Spec.v ~name:"N" ~signature:sg ~constructors:[ "z"; "s" ]
      ~axioms:nat_axioms ()
  in
  let sk = Heuristics.skeletons spec even_op in
  Alcotest.(check (list string)) "even skeletons" [ "even(z)"; "even(s(n))" ]
    (List.map Term.to_string sk);
  (* with axioms present, skeletons mirror the coverage analysis *)
  let sk' = Heuristics.skeletons spec isz_op in
  Alcotest.(check int) "isz has two covered cases" 2 (List.length sk')

let test_skeletons_follow_existing_axioms () =
  let sk = Heuristics.skeletons Queue_spec.spec (Spec.op_exn Queue_spec.spec "FRONT") in
  Alcotest.(check int) "two cases" 2 (List.length sk)

let suite =
  [
    case "no prompts on complete specs" test_no_prompts_when_complete;
    case "boundary cases classified and listed first"
      test_boundary_classified_and_first;
    case "question text names the case" test_question_text;
    case "forced suggestions for singleton result sorts"
      test_forced_rhs_suggestion;
    case "stub axioms make the spec complete" test_stub_axioms_complete_the_spec;
    case "skeletons for an unaxiomatised operation" test_skeletons_for_fresh_op;
    case "skeletons follow existing case analysis"
      test_skeletons_follow_existing_axioms;
  ]
